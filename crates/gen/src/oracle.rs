//! The fuzzing oracles: what may — and may never — happen when solving
//! engines attack a generated instance.
//!
//! Three layers, all soundness-only (an engine answering `unknown` is
//! never a violation):
//!
//! 1. **Differential**: if any engine proves a problem unrealizable, no
//!    engine may report it realizable (and vice versa) — the engines
//!    contradict each other only when one of them is unsound.
//! 2. **Expectation**: the construction knows each instance's verdict
//!    class ([`crate::families::Expectation`]); an engine reporting the
//!    forbidden verdict is unsound even when the other engine stays silent.
//! 3. **Witness**: a claimed solution term must actually be in the
//!    grammar's language and satisfy the specification on a probe grid.
//!
//! Violations render with the reproducing seed and the offending `.sl`
//! text, so a CI failure is a self-contained bug report.

use crate::families::Expectation;
use crate::stream::GeneratedInstance;
use std::fmt;
use sygus::{Example, ExampleSet, Term};

/// An engine's verdict, reduced to the oracle's vocabulary. Map
/// budget-exhaustion, cancellation, and timeouts to [`Claim::Unknown`] —
/// only definitive answers are gated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Claim {
    /// The engine proved no solution exists.
    Unrealizable,
    /// The engine produced (and verified) a solution.
    Realizable,
    /// No definitive answer (budget, timeout, cancellation).
    Unknown,
}

impl Claim {
    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Claim::Unrealizable => "unrealizable",
            Claim::Realizable => "realizable",
            Claim::Unknown => "unknown",
        }
    }
}

/// One engine's answer on one instance.
#[derive(Clone, Debug)]
pub struct EngineClaim {
    /// Engine name as it should appear in failure reports (`nay`, `nope`,
    /// `race`, …).
    pub engine: String,
    /// The verdict.
    pub claim: Claim,
    /// The solution term, when the engine produced one.
    pub witness: Option<Term>,
}

impl EngineClaim {
    /// Convenience constructor.
    pub fn new(engine: impl Into<String>, claim: Claim, witness: Option<Term>) -> EngineClaim {
        EngineClaim {
            engine: engine.into(),
            claim,
            witness,
        }
    }
}

/// A soundness violation found by [`check_instance`].
///
/// Displays as a loud, self-contained failure block: instance name,
/// family, reproducing seed, the contradiction, and the full `.sl` text.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The offending instance's name.
    pub instance: String,
    /// The family it belongs to.
    pub family: &'static str,
    /// The instance seed that reproduces it (see
    /// [`GeneratedInstance::seed`]).
    pub seed: u64,
    /// What went wrong, with the engines and verdicts involved.
    pub detail: String,
    /// The instance's SyGuS-IF text.
    pub sl_text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ORACLE VIOLATION on {} (family {}, instance_seed {}):",
            self.instance, self.family, self.seed
        )?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "  offending instance:")?;
        for line in self.sl_text.lines() {
            writeln!(f, "  | {line}")?;
        }
        Ok(())
    }
}

/// The deterministic probe grid used to validate claimed witnesses:
/// every constrainable point of the generator's families lies on it.
fn probe_examples(instance: &GeneratedInstance) -> ExampleSet {
    let vars = instance.problem.spec().input_vars();
    let mut examples = ExampleSet::new();
    match vars.len() {
        0 => {
            examples.push(Example::new());
        }
        1 => {
            for v in -25..=25 {
                examples.push(Example::from_pairs([(vars[0].clone(), v)]));
            }
        }
        2 => {
            for a in -6..=6 {
                for b in -6..=6 {
                    examples.push(Example::from_pairs([
                        (vars[0].clone(), a),
                        (vars[1].clone(), b),
                    ]));
                }
            }
        }
        n => {
            // A full grid explodes combinatorially past two inputs, so
            // probe each axis over -6..=6 (the others held at 0) plus the
            // constant ±1 diagonals — every variable must be bound on
            // every example or witness evaluation fails spuriously.
            for i in 0..n {
                for v in -6..=6 {
                    examples.push(Example::from_pairs(
                        vars.iter()
                            .enumerate()
                            .map(|(j, x)| (x.clone(), if i == j { v } else { 0 })),
                    ));
                }
            }
            for c in [-1i64, 1] {
                examples.push(Example::from_pairs(vars.iter().map(|x| (x.clone(), c))));
            }
        }
    }
    examples
}

/// Checks one instance against the engines' claims; an empty result means
/// the instance passes all three oracle layers.
pub fn check_instance(instance: &GeneratedInstance, claims: &[EngineClaim]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let violation = |detail: String| Violation {
        instance: instance.name(),
        family: instance.family.name(),
        seed: instance.seed,
        detail,
        sl_text: instance.to_sl(),
    };

    // Layer 1 — differential: contradictory definitive verdicts.
    let unreal: Vec<&EngineClaim> = claims
        .iter()
        .filter(|c| c.claim == Claim::Unrealizable)
        .collect();
    let real: Vec<&EngineClaim> = claims
        .iter()
        .filter(|c| c.claim == Claim::Realizable)
        .collect();
    if let (Some(u), Some(r)) = (unreal.first(), real.first()) {
        violations.push(violation(format!(
            "differential mismatch: {} proved unrealizable but {} produced a solution{}",
            u.engine,
            r.engine,
            r.witness
                .as_ref()
                .map(|w| format!(" ({w})"))
                .unwrap_or_default()
        )));
    }

    // Layer 2 — expectation: the construction's forbidden verdict.
    let forbidden = match instance.expected {
        Expectation::Realizable => Claim::Unrealizable,
        Expectation::Unrealizable => Claim::Realizable,
    };
    for claim in claims.iter().filter(|c| c.claim == forbidden) {
        violations.push(violation(format!(
            "expectation mismatch: instance is {} by construction but {} reported {}",
            instance.expected,
            claim.engine,
            claim.claim.name()
        )));
    }

    // Layer 3 — witness validity.
    let probes = probe_examples(instance);
    for claim in claims {
        let Some(witness) = &claim.witness else {
            continue;
        };
        if !instance.problem.grammar().contains_term(witness) {
            violations.push(violation(format!(
                "invalid witness from {}: {witness} is not in the grammar's language",
                claim.engine
            )));
        }
        match instance.problem.satisfied_on_examples(witness, &probes) {
            Ok(true) => {}
            Ok(false) => violations.push(violation(format!(
                "invalid witness from {}: {witness} violates the spec on the probe grid",
                claim.engine
            ))),
            Err(e) => violations.push(violation(format!(
                "invalid witness from {}: {witness} fails to evaluate: {e}",
                claim.engine
            ))),
        }
    }
    violations
}

/// Checks that an instance's rendered `.sl` text parses back to the same
/// content — the print/parse round-trip gate of a fuzz sweep.
pub fn roundtrip_violation(instance: &GeneratedInstance) -> Option<Violation> {
    let text = instance.to_sl();
    let make = |detail: String| Violation {
        instance: instance.name(),
        family: instance.family.name(),
        seed: instance.seed,
        detail,
        sl_text: text.clone(),
    };
    match sygus::parser::parse_problem(&text, &instance.name()) {
        Err(e) => Some(make(format!("printed instance does not parse back: {e}"))),
        Ok(parsed) if parsed.fingerprint() != instance.problem.fingerprint() => Some(make(
            "printed instance parses to different content (fingerprint mismatch)".to_string(),
        )),
        Ok(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{GenConfig, ProblemStream};

    fn instance_of(expected: Expectation) -> GeneratedInstance {
        ProblemStream::new(GenConfig::new(9))
            .take(100)
            .find(|i| i.expected == expected)
            .expect("100 draws include both classes")
    }

    #[test]
    fn consistent_claims_pass() {
        let instance = instance_of(Expectation::Unrealizable);
        let claims = vec![
            EngineClaim::new("nay", Claim::Unrealizable, None),
            EngineClaim::new("nope", Claim::Unknown, None),
        ];
        assert!(check_instance(&instance, &claims).is_empty());
    }

    #[test]
    fn unknown_is_never_a_violation() {
        for expected in [Expectation::Realizable, Expectation::Unrealizable] {
            let instance = instance_of(expected);
            let claims = vec![
                EngineClaim::new("nay", Claim::Unknown, None),
                EngineClaim::new("nope", Claim::Unknown, None),
            ];
            assert!(check_instance(&instance, &claims).is_empty());
        }
    }

    #[test]
    fn contradictory_verdicts_are_flagged() {
        let instance = instance_of(Expectation::Unrealizable);
        let claims = vec![
            EngineClaim::new("nope", Claim::Unrealizable, None),
            EngineClaim::new("nay", Claim::Realizable, Some(sygus::Term::num(0))),
        ];
        let violations = check_instance(&instance, &claims);
        assert!(
            violations
                .iter()
                .any(|v| v.detail.contains("differential mismatch")),
            "{violations:?}"
        );
        // The rendered violation is a self-contained bug report.
        let rendered = violations[0].to_string();
        assert!(rendered.contains("ORACLE VIOLATION"));
        assert!(rendered.contains("instance_seed"));
        assert!(rendered.contains("(synth-fun"));
    }

    #[test]
    fn forbidden_expectation_verdicts_are_flagged() {
        let instance = instance_of(Expectation::Realizable);
        let claims = vec![EngineClaim::new("nope", Claim::Unrealizable, None)];
        let violations = check_instance(&instance, &claims);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].detail.contains("expectation mismatch"));
    }

    #[test]
    fn bogus_witnesses_are_flagged() {
        let instance = instance_of(Expectation::Realizable);
        // A term outside the language (fresh variable) with the right
        // claim: layer 3 must catch it even though the verdict agrees
        // with the expectation.
        let claims = vec![EngineClaim::new(
            "nay",
            Claim::Realizable,
            Some(sygus::Term::var("zz")),
        )];
        let violations = check_instance(&instance, &claims);
        assert!(
            violations.iter().any(|v| v.detail.contains("witness")),
            "{violations:?}"
        );
    }

    #[test]
    fn valid_witnesses_pass_layer_three() {
        let instance = instance_of(Expectation::Realizable);
        let witness = instance.witness.clone().expect("realizable ⇒ witness");
        let claims = vec![EngineClaim::new("nay", Claim::Realizable, Some(witness))];
        assert!(check_instance(&instance, &claims).is_empty());
    }

    #[test]
    fn roundtrip_gate_passes_on_generated_instances() {
        for instance in ProblemStream::new(GenConfig::new(17)).take(30) {
            assert!(roundtrip_violation(&instance).is_none());
        }
    }

    #[test]
    fn probe_grid_binds_every_variable_beyond_two_inputs() {
        // check_instance is a public API over arbitrary instances, not only
        // the current 1–2-variable families: a valid witness for a
        // 3-variable spec must pass layer 3 (every probe example binds
        // every input, else evaluation fails spuriously).
        use logic::{Formula, LinearExpr, Var};
        use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol, Term};
        let vars = ["x", "y", "z"];
        let mut builder = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"]);
        for v in vars {
            builder = builder.production("Start", Symbol::Var(v.to_string()), &[]);
        }
        let grammar = builder.build().expect("3-var grammar is well-formed");
        let sum = vars.iter().fold(LinearExpr::constant(0), |acc, v| {
            acc + LinearExpr::var(Var::new(*v))
        });
        let spec = Spec::new(
            Formula::eq(LinearExpr::var(Spec::output_var()), sum),
            vars.iter().map(|v| v.to_string()).collect(),
            Sort::Int,
        );
        let instance = GeneratedInstance {
            family: crate::families::Family::ConstSum,
            index: 0,
            seed: 0,
            expected: Expectation::Realizable,
            witness: None,
            problem: Problem::new("three_vars", grammar, spec),
        };
        let witness = Term::plus(Term::plus(Term::var("x"), Term::var("y")), Term::var("z"));
        let claims = vec![EngineClaim::new("nay", Claim::Realizable, Some(witness))];
        assert!(check_instance(&instance, &claims).is_empty());
    }
}
