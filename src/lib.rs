//! Umbrella crate of the *SyGuS unrealizability* reproduction.
//!
//! This workspace reproduces **"Exact and Approximate Methods for Proving
//! Unrealizability of Syntax-Guided Synthesis Problems"** (Hu, Cyphert,
//! D'Antoni, Reps — PLDI 2020): the `nay` tool, its semi-linear-set decision
//! procedures for LIA and CLIA SyGuS problems over examples, the `nayHorn`
//! constrained-Horn-clause mode, the `nope` baseline, and the benchmark
//! suite and experiment harness of the paper's evaluation.
//!
//! The individual crates are re-exported here so that examples and
//! downstream users can depend on a single package:
//!
//! * [`sygus`] — terms, grammars, examples, specifications, SyGuS-IF parsing,
//! * [`logic`] — QF-LIA formulas and the built-in solver,
//! * [`analyze`] — static semantic analysis: well-formedness diagnostics,
//!   grammar structure reports, and the interval/parity abstract presolve,
//! * [`semilinear`] — semi-linear sets and Boolean-vector sets,
//! * [`gfa`] — grammar-flow analysis: Newton's method, Kleene iteration,
//!   stratification,
//! * [`chc`] — constrained Horn clauses and the approximate Horn solver,
//! * [`enumerative`] — the bottom-up enumerative synthesizer,
//! * [`nope`] — the program-reachability baseline,
//! * [`nay`] — Alg. 1 / Alg. 2: the unrealizability checker and CEGIS loop,
//! * [`runner`] — the parallel benchmark runner: work-stealing pool,
//!   per-job timeouts, panic isolation, and JSON perf reports,
//! * [`benchmarks`] — the LimitedPlus / LimitedIf / LimitedConst families.
//!
//! # Quick start
//!
//! ```
//! use nay::check::{check_unrealizable, Verdict};
//! use nay::Mode;
//! use sygus::{parser, ExampleSet};
//!
//! let problem = parser::parse_problem(
//!     r#"
//!     (set-logic LIA)
//!     (synth-fun f ((x Int)) Int
//!       ((Start Int) (X Int))
//!       ((Start Int ((+ X Start) 0))
//!        (X Int (x))))
//!     (declare-var x Int)
//!     (constraint (= (f x) (+ (* 2 x) 2)))
//!     (check-synth)
//!     "#,
//!     "quickstart",
//! ).unwrap();
//! // the grammar only produces k·x, which can match 2x+2 on one example but
//! // not on the two examples x = 1 and x = 2 simultaneously
//! let examples = ExampleSet::for_single_var("x", [1, 2]);
//! let outcome = check_unrealizable(&problem, &examples, &Mode::default());
//! assert_eq!(outcome.verdict, Verdict::Unrealizable);
//! ```

#![forbid(unsafe_code)]

pub use analyze;
pub use benchmarks;
pub use chc;
pub use enumerative;
pub use gfa;
pub use logic;
pub use nay;
pub use nope;
pub use runner;
pub use semilinear;
pub use sygus;
