//! The corpus-wide "analyzer-clean" gate: every promoted `.sl` file under
//! `corpus/` must pass the well-formedness checker with zero diagnostics
//! (not even warnings), parse into a grammar report, and leave the
//! presolve with a rechecked outcome. A corpus file that starts tripping
//! the analyzer means either the file regressed or the analyzer grew a
//! false positive — both are bugs.

use analyze::{analyze_source, Presolver};
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", corpus.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sl"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_corpus_file_is_analyzer_clean() {
    let files = corpus_files();
    assert!(
        files.len() >= 20,
        "expected a populated corpus, found {} .sl files",
        files.len()
    );
    let mut dirty = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("corpus")
            .to_string();
        let report = analyze_source(&text, &name);
        if !report.is_clean() {
            for d in &report.diagnostics {
                dirty.push(format!("{}:{d}", path.display()));
            }
        }
        assert!(
            report.grammar.is_some(),
            "{} produced no grammar report",
            path.display()
        );
        assert!(
            report.presolve.is_some(),
            "{} produced no presolve outcome",
            path.display()
        );
    }
    assert!(
        dirty.is_empty(),
        "corpus files with diagnostics:\n{}",
        dirty.join("\n")
    );
}

#[test]
fn corpus_presolve_outcomes_survive_recheck() {
    let presolver = Presolver::new();
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let problem = sygus::parser::parse_problem(&text, "corpus")
            .unwrap_or_else(|e| panic!("{} fails to parse: {e}", path.display()));
        let outcome = presolver.presolve(&problem);
        if outcome.is_definitive() {
            assert!(
                presolver.recheck(&problem, &outcome),
                "{}: definitive outcome fails recheck: {}",
                path.display(),
                outcome.reason
            );
        }
    }
}
