; plus_example2 — exported by `cargo run --example export_corpus`
(set-logic LIA)
(synth-fun f ((x1 Int) (x Int)) Int
  ((S2 Int ((+ S0 S1) (+ S1 S0) (+ S0 S0) x 0 1))
  (S0 Int (x 0 1))
  (S1 Int ((+ S0 S0) x 0 1))))
(declare-var x1 Int)
(declare-var x Int)
(constraint (= (f x1 x) (+ (* 3 x1) 1)))
(check-synth)
