//! **nay** — proving unrealizability of syntax-guided synthesis problems.
//!
//! This crate is the paper's primary contribution: a framework that reduces
//! unrealizability of a SyGuS problem over a finite set of examples to
//! solving a system of equations in an abstract domain (grammar-flow
//! analysis, §4), together with
//!
//! * an **exact decision procedure** for LIA problems with examples, based on
//!   the semiring of semi-linear sets and Newton's method (§5, [`lia`]),
//! * an **exact decision procedure** for CLIA problems with examples, which
//!   alternates a finite fixed point over Boolean-vector sets with
//!   semi-linear solving and eliminates `IfThenElse` via the `RemIf`
//!   rewriting (§6, [`clia`]),
//! * the **Alg. 1** driver [`check::check_unrealizable`] that turns a GFA
//!   solution into an SMT query via symbolic concretization (Thm. 4.5),
//! * the **Alg. 2** CEGIS loop [`cegis::Nay`] combining the unrealizability
//!   verifier with an enumerative synthesizer and a counterexample-producing
//!   verifier (§7),
//! * the approximate `nayHorn` mode backed by the `chc` crate.
//!
//! # Quick start
//!
//! ```
//! use nay::check::{check_unrealizable, Verdict};
//! use nay::Mode;
//! use logic::{LinearExpr, Var};
//! use sygus::{ExampleSet, GrammarBuilder, Sort, Spec, Symbol, Problem};
//!
//! // Section 2 of the paper: G1 generates 3k·x, the spec wants 2x + 2.
//! let grammar = GrammarBuilder::new("Start")
//!     .nonterminal("Start", Sort::Int)
//!     .nonterminal("S1", Sort::Int)
//!     .nonterminal("S2", Sort::Int)
//!     .nonterminal("S3", Sort::Int)
//!     .production("Start", Symbol::Plus, &["S1", "Start"])
//!     .production("Start", Symbol::Num(0), &[])
//!     .production("S1", Symbol::Plus, &["S2", "S3"])
//!     .production("S2", Symbol::Plus, &["S3", "S3"])
//!     .production("S3", Symbol::Var("x".to_string()), &[])
//!     .build().unwrap();
//! let spec = Spec::output_equals(
//!     LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
//!     vec!["x".to_string()],
//! );
//! let problem = Problem::new("section2", grammar, spec);
//! let examples = ExampleSet::for_single_var("x", [1]);
//! let outcome = check_unrealizable(&problem, &examples, &Mode::default());
//! assert_eq!(outcome.verdict, Verdict::Unrealizable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cegis;
pub mod check;
pub mod clia;
pub mod lia;
mod modes;
pub mod verifier;

pub use cegis::{CegisOutcome, CegisStats, Nay};
pub use check::{check_unrealizable, CheckOutcome, Verdict};
pub use modes::Mode;
