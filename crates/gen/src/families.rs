//! The family catalogue: which kinds of SyGuS problems the generator
//! emits, and the knobs that scale them.
//!
//! Every family is *verdict-transparent*: the builder knows, by
//! construction, whether each emitted instance is realizable or
//! unrealizable (see [`Expectation`]), which turns every generated
//! instance into a free soundness test for the solving engines — an
//! engine reporting the forbidden verdict is a bug, full stop.

use std::fmt;

/// Which verdict class an instance belongs to, known by construction.
///
/// The expectation is a *soundness bound*, not a completeness demand: an
/// engine may always answer `unknown`, but it must never report the
/// verdict the construction rules out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// A witness term exists (the builder produces one); no engine may
    /// report `unrealizable`.
    Realizable,
    /// No solution exists (a finite argument rules every term out); no
    /// engine may report `realizable`.
    Unrealizable,
}

impl Expectation {
    /// Stable lower-case name (`realizable` / `unrealizable`), used in the
    /// generated `.sl` header comments and the oracle's failure reports.
    pub fn name(&self) -> &'static str {
        match self {
            Expectation::Realizable => "realizable",
            Expectation::Unrealizable => "unrealizable",
        }
    }
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The sign skew of a [`FamilySpec`]'s constant pool: which side of zero
/// the generated constant leaves are drawn from. A data knob in the spirit
/// of dbgen's template-driven value skew.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignSkew {
    /// Constants are strictly positive.
    Positive,
    /// Constants are strictly negative.
    Negative,
    /// Each constant's sign is a fair coin flip.
    Mixed,
}

/// A data-configurable problem family: grammar shape, constant skew, guard
/// usage, and spec size as *data*, interpreted by one generic builder
/// (`build_from_spec` in the builder module) — adding a family of this
/// class is a table edit, not a new Rust constructor.
///
/// Every spec-driven instance rests on one airtight **congruence-anchor**
/// argument: all constant leaves are multiples of a per-instance modulus
/// `g ≥ 2`, the only other leaf is the input variable `x`, and the spec
/// always contains the anchor conjunct `x = 0 ⇒ f = t`. At `x = 0` every
/// integer-sorted grammar term evaluates to a multiple of `g` (leaves are
/// `0` or multiples of `g`; `+` preserves the property; `ite` merely
/// selects between two terms that both have it), so `t ≢ 0 (mod g)` is
/// unrealizable by construction, and `t` a reachable sum of constant
/// leaves is realizable with that sum as an explicit witness.
#[derive(Clone, Copy, Debug)]
pub struct FamilySpec {
    /// Stable snake_case family name.
    pub name: &'static str,
    /// One-line description for the CLI catalogue.
    pub description: &'static str,
    /// Whether the grammar has an `x` variable leaf (it never disturbs the
    /// anchor argument, since `x = 0` there).
    pub var_leaf: bool,
    /// Minimal number of distinct constant leaves (≥ 1).
    pub pool_min: usize,
    /// Maximal number of distinct constant leaves.
    pub pool_max: usize,
    /// Sign skew of the constant pool.
    pub sign: SignSkew,
    /// Constants are `±g·m` with `m ∈ 1..=multiplier_cap`.
    pub multiplier_cap: i64,
    /// Whether the grammar has `ite` with `<` guards (plus `and`/`not` at
    /// guard-nesting tier ≥ 2, per [`Scale::max_nesting`]).
    pub ite: bool,
    /// Maximal number of extra spec points beyond the anchor (each drawn
    /// from the probe grid; extra points never restore realizability — the
    /// anchor alone refutes unrealizable instances).
    pub extra_points_max: usize,
    /// Probability (percent) that an instance is realizable.
    pub realizable_percent: u32,
    /// Realizable witnesses sum at most this many constant leaves.
    pub max_summands: i64,
}

/// The spec-driven slice of the catalogue, interpreted by the builder's
/// `build_from_spec`. **To add a family as data**: append
/// a spec here, give it a [`Family`] variant, and list the variant in
/// [`Family::ALL`] — builder, stream, CLI, fuzz aggregation, and the CI
/// gates pick it up from the catalogue.
pub const FAMILY_SPECS: [FamilySpec; 3] = [
    FamilySpec {
        name: "mod_pool",
        description: "mixed-sign pool of g-multiples under + vs a congruence anchor",
        var_leaf: false,
        pool_min: 2,
        pool_max: 4,
        sign: SignSkew::Mixed,
        multiplier_cap: 3,
        ite: false,
        extra_points_max: 0,
        realizable_percent: 40,
        max_summands: 3,
    },
    FamilySpec {
        name: "mod_ite",
        description: "piecewise g-multiples with ite guards and extra spec points",
        var_leaf: true,
        pool_min: 2,
        pool_max: 3,
        sign: SignSkew::Mixed,
        multiplier_cap: 2,
        ite: true,
        extra_points_max: 2,
        realizable_percent: 40,
        max_summands: 2,
    },
    FamilySpec {
        name: "mod_neg",
        description: "negative-skew constant pool under ite vs a congruence anchor",
        var_leaf: false,
        pool_min: 2,
        pool_max: 3,
        sign: SignSkew::Negative,
        multiplier_cap: 3,
        ite: true,
        extra_points_max: 1,
        realizable_percent: 35,
        max_summands: 3,
    },
];

/// A parameterized problem family.
///
/// Each variant scales along different knobs of [`Scale`]; the per-family
/// construction (and the by-construction verdict argument) lives in
/// [`crate::builder`] — hand-written for the five legacy families, one
/// generic data-driven interpreter for the [`FamilySpec`] families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// `Start ::= S₁ + Start | 0`, `Sᵢ ::= Sᵢ₊₁ + Sᵢ₊₁`, `S_d ::= x` — the
    /// §2 chain shape. The grammar generates exactly `{m·2^(d−1)·x : m ≥ 0}`;
    /// the spec asks for `c·x + r`. Scales with grammar **depth** `d`.
    PlusMod,
    /// `Start ::= c | Start + Start` (no variables): sums `{m·c : m ≥ 1}`
    /// against a constant target. Scales with **constant magnitude**.
    ConstSum,
    /// Piecewise-constant CLIA: constants under `ite` with `x < g` guards,
    /// point-wise spec `x = aⱼ ⇒ f = vⱼ`. Scales with **guard nesting**
    /// and **point count**.
    GuardedConst,
    /// Programming-by-example over `Start ::= x | 0 [| 1] | Start + Start`:
    /// point constraints from a hidden affine target (or a deliberately
    /// inconsistent perturbation). Scales with **example count**.
    PbePoints,
    /// The max-with-offset CLIA shape: `f = max(x, y) + g` over a grammar
    /// whose only constant is `0` — realizable exactly when `g = 0`.
    /// Scales with **guard nesting**.
    MaxGap,
    /// Spec-driven: `FAMILY_SPECS[0]` (`mod_pool`).
    ModPool,
    /// Spec-driven: `FAMILY_SPECS[1]` (`mod_ite`).
    ModIte,
    /// Spec-driven: `FAMILY_SPECS[2]` (`mod_neg`).
    ModNeg,
}

impl Family {
    /// Every family, in catalogue order (the round-robin order of the
    /// stream).
    pub const ALL: [Family; 8] = [
        Family::PlusMod,
        Family::ConstSum,
        Family::GuardedConst,
        Family::PbePoints,
        Family::MaxGap,
        Family::ModPool,
        Family::ModIte,
        Family::ModNeg,
    ];

    /// The [`FamilySpec`] behind a spec-driven family; `None` for the
    /// hand-written families.
    pub fn spec(&self) -> Option<&'static FamilySpec> {
        match self {
            Family::ModPool => Some(&FAMILY_SPECS[0]),
            Family::ModIte => Some(&FAMILY_SPECS[1]),
            Family::ModNeg => Some(&FAMILY_SPECS[2]),
            _ => None,
        }
    }

    /// Stable snake_case name, used in instance names, report families,
    /// and the `--families` CLI flag.
    pub fn name(&self) -> &'static str {
        if let Some(spec) = self.spec() {
            return spec.name;
        }
        match self {
            Family::PlusMod => "plus_mod",
            Family::ConstSum => "const_sum",
            Family::GuardedConst => "guarded_const",
            Family::PbePoints => "pbe_points",
            Family::MaxGap => "max_gap",
            Family::ModPool | Family::ModIte | Family::ModNeg => unreachable!(),
        }
    }

    /// Inverse of [`Family::name`].
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// One-line description for the CLI family catalogue.
    pub fn description(&self) -> &'static str {
        if let Some(spec) = self.spec() {
            return spec.description;
        }
        match self {
            Family::PlusMod => "multiples-of-2^(d-1)·x chain grammar vs an affine target",
            Family::ConstSum => "constant-sum grammar {m·c} vs a constant target",
            Family::GuardedConst => "piecewise-constant ite grammar vs point constraints",
            Family::PbePoints => "affine PBE: point constraints from a hidden (or broken) target",
            Family::MaxGap => "max(x,y)+g over a constant-free CLIA grammar",
            Family::ModPool | Family::ModIte | Family::ModNeg => unreachable!(),
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The scaling knobs, applied per instance: each instance draws its own
/// depth/magnitude/point-count/nesting uniformly up to these caps, and is
/// realizable with probability `realizable_percent`.
///
/// The defaults keep instances small enough that the exact engine's
/// enumerator can *find* the realizable witnesses (term size ≤ its default
/// search budget), so a fuzz sweep exercises both verdict paths.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Maximal chain depth `d` of [`Family::PlusMod`] grammars (≥ 1).
    pub max_depth: usize,
    /// Maximal absolute value of generated constants (≥ 1).
    pub max_magnitude: i64,
    /// Maximal number of spec points for the point-wise families (≥ 2).
    pub max_points: usize,
    /// Maximal guard-nesting tier: 1 = plain `x < g` / `a < b` guards,
    /// 2 = adds `and`/`not` guard productions.
    pub max_nesting: usize,
    /// Probability (percent) that an instance is realizable by
    /// construction.
    pub realizable_percent: u32,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            max_depth: 3,
            max_magnitude: 9,
            max_points: 3,
            max_nesting: 2,
            realizable_percent: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.name()), Some(family));
            assert!(!family.description().is_empty());
        }
        assert_eq!(Family::parse("nope_family"), None);
    }

    #[test]
    fn catalogue_has_no_duplicate_names() {
        let names: std::collections::BTreeSet<_> = Family::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn expectation_names_are_stable() {
        assert_eq!(Expectation::Realizable.name(), "realizable");
        assert_eq!(Expectation::Unrealizable.name(), "unrealizable");
    }

    #[test]
    fn every_spec_is_reachable_from_a_family_and_well_formed() {
        let spec_names: Vec<_> = Family::ALL
            .iter()
            .filter_map(|f| f.spec())
            .map(|s| s.name)
            .collect();
        assert_eq!(
            spec_names,
            FAMILY_SPECS.iter().map(|s| s.name).collect::<Vec<_>>(),
            "every FAMILY_SPECS entry must be wired to exactly one Family variant"
        );
        for spec in &FAMILY_SPECS {
            assert!(spec.pool_min >= 1 && spec.pool_min <= spec.pool_max);
            assert!(spec.multiplier_cap >= 1);
            assert!(spec.realizable_percent <= 100);
            assert!(spec.max_summands >= 1);
        }
    }
}
