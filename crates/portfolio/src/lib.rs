//! Portfolio solving: race the exact CHC/GFA-based checker (`nay`) against
//! the approximate program-reachability baseline (`nope`) and return the
//! first definitive verdict.
//!
//! The paper's central empirical point (§8) is that the two engines are
//! *complementary*: each proves instances the other cannot, or proves them
//! far faster. A portfolio exploits that directly — both engines start on
//! the same problem, the first to reach a definitive verdict trips a shared
//! [`Cancel`] token, and the other aborts within one loop iteration. The
//! common case (one engine much faster) then runs at the speed of the
//! winner plus the loser's cancellation latency.
//!
//! Layering:
//!
//! * [`Cancel`] (defined in `runner`, re-exported here as the portfolio's
//!   public token type) is polled by `nay`'s CEGIS loop and `nope`'s
//!   bounded search / abstract fixpoint once per iteration;
//! * [`engines`] adapts the two solvers to a common [`SolveVerdict`]
//!   vocabulary — including the example-growing outer loop that `nope`
//!   needs to attack a bare SyGuS problem;
//! * [`race`] runs both adapters as jobs on `runner`'s work-stealing pool
//!   and assembles a [`RaceReport`] with per-engine timing, iteration
//!   counts, and the loser's cancellation latency.
//!
//! In front of the race sits a *presolve* stage (crate `analyze`, on by
//! default): a static analyzer that can settle a problem without running
//! any engine — empty or exhaustively-refuted finite languages, verified
//! finite-language witnesses, and interval/parity abstract refutations.
//! Its verdicts are sound by construction and additionally re-validated
//! through [`analyze::Presolver::recheck`] before they are trusted, so the
//! presolve can never flip a race verdict — it only skips engine work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engines;
pub mod race;

pub use engines::{solve_nay, solve_nope, EngineOutcome, NopeEngine, SolveVerdict};
pub use race::{EngineReport, Portfolio, PresolveSummary, RaceReport};
pub use runner::Cancel;

#[cfg(test)]
mod test_problems {
    //! The shared example problems of the unit tests.

    use logic::{Formula, LinearExpr, Var};
    use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol};

    /// §2, grammar G1 with spec `f(x) = 2x + 2`: unrealizable, and both
    /// engines can prove it.
    pub fn section2_lia() -> Problem {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        Problem::new("section2-lia", grammar, spec)
    }

    /// `Start ::= x | 1 | Start + Start` with spec `f(x) = x + 2`:
    /// realizable, and only nay can prove it.
    pub fn realizable_xplus2() -> Problem {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Var("x".to_string()), &[])
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        Problem::new("xplus2", grammar, spec)
    }

    /// Gconst (Ex. 3.8) with spec `f(x) > x`: unrealizable but provable by
    /// neither engine.
    pub fn gconst() -> Problem {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .build()
            .unwrap();
        let spec = Spec::new(
            Formula::gt(
                LinearExpr::var(Spec::output_var()),
                LinearExpr::var(Var::new("x")),
            ),
            vec!["x".to_string()],
            Sort::Int,
        );
        Problem::new("gconst", grammar, spec)
    }
}
