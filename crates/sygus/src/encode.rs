//! Encoding of a candidate term's input/output semantics as a QF-LIA
//! formula.
//!
//! This is what the verifier inside the CEGIS loop (Alg. 2, line 6) needs:
//! given a candidate term `e` and a specification `ψ`, the satisfiability of
//!
//! ```text
//! encode(e, r) ∧ ¬ψ(r, x̄)
//! ```
//!
//! over the symbolic inputs `x̄` yields a counterexample input `i_cex` with
//! `¬ψ(⟦e⟧(i_cex), i_cex)` — or proves the candidate correct when
//! unsatisfiable. The paper delegates this query to CVC4; here it is
//! discharged by the `logic` crate.

use crate::spec::Spec;
use crate::term::{Sort, Symbol, Term};
use logic::{Formula, LinearExpr, Var};

/// A fresh-variable counter used while encoding `IfThenElse` results.
#[derive(Default)]
struct FreshVars {
    next: usize,
}

impl FreshVars {
    fn fresh(&mut self) -> Var {
        let v = Var::new(format!("__ite_{}", self.next));
        self.next += 1;
        v
    }
}

/// The result of encoding an integer-sorted term: side constraints plus the
/// linear expression denoting the term's value.
#[derive(Clone, Debug)]
pub struct EncodedTerm {
    /// Constraints that must hold for `value` to denote the term's output.
    pub constraints: Formula,
    /// The term's output value as a linear expression over the inputs and
    /// auxiliary variables.
    pub value: LinearExpr,
}

/// Encodes an integer-sorted term over symbolic inputs (input variables are
/// referred to by their names).
///
/// # Panics
/// Panics if the term is Boolean-sorted; use [`encode_bool_term`] for those.
pub fn encode_int_term(term: &Term) -> EncodedTerm {
    assert_eq!(
        term.sort(),
        Sort::Int,
        "encode_int_term requires an Int term"
    );
    let mut fresh = FreshVars::default();
    let (constraints, value) = encode_int(term, &mut fresh);
    EncodedTerm { constraints, value }
}

/// Encodes a Boolean-sorted term as a formula over the symbolic inputs.
///
/// # Panics
/// Panics if the term is integer-sorted.
pub fn encode_bool_term(term: &Term) -> (Formula, Formula) {
    assert_eq!(
        term.sort(),
        Sort::Bool,
        "encode_bool_term requires a Bool term"
    );
    let mut fresh = FreshVars::default();
    encode_bool(term, &mut fresh)
}

fn encode_int(term: &Term, fresh: &mut FreshVars) -> (Formula, LinearExpr) {
    match term.symbol() {
        Symbol::Num(c) => (Formula::True, LinearExpr::constant(*c)),
        Symbol::Var(x) => (Formula::True, LinearExpr::var(Var::new(x.clone()))),
        Symbol::NegVar(x) => (
            Formula::True,
            LinearExpr::var(Var::new(x.clone())).scale(-1),
        ),
        Symbol::Plus => {
            let mut constraints = Vec::new();
            let mut sum = LinearExpr::zero();
            for c in term.children() {
                let (cc, cv) = encode_int(c, fresh);
                constraints.push(cc);
                sum = sum + cv;
            }
            (Formula::and(constraints), sum)
        }
        Symbol::Minus => {
            let (c0, v0) = encode_int(&term.children()[0], fresh);
            let (c1, v1) = encode_int(&term.children()[1], fresh);
            (Formula::and(vec![c0, c1]), v0 - v1)
        }
        Symbol::IfThenElse => {
            let (cb, guard) = encode_bool(&term.children()[0], fresh);
            let (ct, vt) = encode_int(&term.children()[1], fresh);
            let (ce, ve) = encode_int(&term.children()[2], fresh);
            let result = fresh.fresh();
            let rv = LinearExpr::var(result);
            let choice = Formula::or(vec![
                Formula::and(vec![guard.clone(), Formula::eq(rv.clone(), vt)]),
                Formula::and(vec![Formula::not(guard), Formula::eq(rv.clone(), ve)]),
            ]);
            (Formula::and(vec![cb, ct, ce, choice]), rv)
        }
        other => unreachable!("symbol {other} is not integer-sorted"),
    }
}

fn encode_bool(term: &Term, fresh: &mut FreshVars) -> (Formula, Formula) {
    match term.symbol() {
        Symbol::LessThan => {
            let (c0, v0) = encode_int(&term.children()[0], fresh);
            let (c1, v1) = encode_int(&term.children()[1], fresh);
            (Formula::and(vec![c0, c1]), Formula::lt(v0, v1))
        }
        Symbol::Equal => {
            let (c0, v0) = encode_int(&term.children()[0], fresh);
            let (c1, v1) = encode_int(&term.children()[1], fresh);
            (Formula::and(vec![c0, c1]), Formula::eq(v0, v1))
        }
        Symbol::And => {
            let (c0, f0) = encode_bool(&term.children()[0], fresh);
            let (c1, f1) = encode_bool(&term.children()[1], fresh);
            (Formula::and(vec![c0, c1]), Formula::and(vec![f0, f1]))
        }
        Symbol::Or => {
            let (c0, f0) = encode_bool(&term.children()[0], fresh);
            let (c1, f1) = encode_bool(&term.children()[1], fresh);
            (Formula::and(vec![c0, c1]), Formula::or(vec![f0, f1]))
        }
        Symbol::Not => {
            let (c0, f0) = encode_bool(&term.children()[0], fresh);
            (c0, Formula::not(f0))
        }
        other => unreachable!("symbol {other} is not Boolean-sorted"),
    }
}

/// The counterexample query of the CEGIS verifier: satisfiable iff the
/// candidate violates the specification on some input. A model of the
/// returned formula assigns violating values to the input variables.
pub fn counterexample_query(candidate: &Term, spec: &Spec) -> Formula {
    let out = Spec::output_var();
    let spec_formula = spec.formula().clone();
    match candidate.sort() {
        Sort::Int => {
            let encoded = encode_int_term(candidate);
            let bind = Formula::eq(LinearExpr::var(out), encoded.value);
            Formula::and(vec![encoded.constraints, bind, Formula::not(spec_formula)])
        }
        Sort::Bool => {
            let (constraints, truth) = encode_bool_term(candidate);
            // output encoded as 0/1
            let bind = Formula::ite(
                truth,
                Formula::eq(LinearExpr::var(out.clone()), LinearExpr::constant(1)),
                Formula::eq(LinearExpr::var(out), LinearExpr::constant(0)),
            );
            Formula::and(vec![constraints, bind, Formula::not(spec_formula)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::Example;
    use logic::{Solver, SolverResult};

    #[test]
    fn lia_term_encoding_is_linear() {
        // 2x + 2 written as x + x + 2
        let t = Term::apply(
            Symbol::Plus,
            vec![Term::var("x"), Term::var("x"), Term::num(2)],
        )
        .unwrap();
        let e = encode_int_term(&t);
        assert_eq!(e.constraints, Formula::True);
        assert_eq!(e.value.coeff(&Var::new("x")), 2);
        assert_eq!(e.value.constant_part(), 2);
    }

    #[test]
    fn correct_candidate_has_unsat_counterexample_query() {
        // spec: f(x) = 2x + 2; candidate: x + x + 2 — correct on all inputs
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        let candidate = Term::apply(
            Symbol::Plus,
            vec![Term::var("x"), Term::var("x"), Term::num(2)],
        )
        .unwrap();
        let q = counterexample_query(&candidate, &spec);
        assert_eq!(Solver::default().check(&q), SolverResult::Unsat);
    }

    #[test]
    fn incorrect_candidate_yields_counterexample() {
        // spec: f(x) = 2x + 2; candidate: 4x (correct only on x = 1)
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        let candidate = Term::apply(
            Symbol::Plus,
            vec![
                Term::var("x"),
                Term::var("x"),
                Term::var("x"),
                Term::var("x"),
            ],
        )
        .unwrap();
        let q = counterexample_query(&candidate, &spec);
        match Solver::default().check(&q) {
            SolverResult::Sat(m) => {
                let cex = spec.example_from_model(&m);
                // the candidate must indeed violate the spec on the returned input
                let value = candidate.eval(&cex).unwrap();
                assert!(!spec.holds_value(&cex, value));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ite_candidate_encoding() {
        // candidate: ite(x < 0, 0, x); spec: f(x) ≥ 0 — correct everywhere
        let spec = Spec::new(
            Formula::ge(LinearExpr::var(Spec::output_var()), LinearExpr::constant(0)),
            vec!["x".to_string()],
            Sort::Int,
        );
        let candidate = Term::ite(
            Term::less_than(Term::var("x"), Term::num(0)),
            Term::num(0),
            Term::var("x"),
        )
        .unwrap();
        let q = counterexample_query(&candidate, &spec);
        assert_eq!(Solver::default().check(&q), SolverResult::Unsat);

        // but spec f(x) > 0 admits the counterexample x = 0 (or any x ≤ 0)
        let strict = Spec::new(
            Formula::gt(LinearExpr::var(Spec::output_var()), LinearExpr::constant(0)),
            vec!["x".to_string()],
            Sort::Int,
        );
        let q2 = counterexample_query(&candidate, &strict);
        match Solver::default().check(&q2) {
            SolverResult::Sat(m) => {
                let cex = strict.example_from_model(&m);
                let value = candidate.eval(&cex).unwrap();
                assert!(!strict.holds_value(&cex, value));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bool_candidate_encoding() {
        // candidate: x < 5, spec: f(x) = 1 (always true) — x = 5 is a cex
        let spec = Spec::new(
            Formula::eq(LinearExpr::var(Spec::output_var()), LinearExpr::constant(1)),
            vec!["x".to_string()],
            Sort::Bool,
        );
        let candidate = Term::less_than(Term::var("x"), Term::num(5));
        let q = counterexample_query(&candidate, &spec);
        match Solver::default().check(&q) {
            SolverResult::Sat(m) => {
                let cex = spec.example_from_model(&m);
                assert!(cex.get("x").unwrap() >= 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn encoding_agrees_with_evaluation() {
        // pin the input and check the encoded value matches eval()
        let t = Term::ite(
            Term::less_than(Term::var("x"), Term::num(3)),
            Term::plus(Term::var("x"), Term::num(10)),
            Term::minus(Term::var("x"), Term::num(1)),
        )
        .unwrap();
        let solver = Solver::default();
        for x in [-2i64, 0, 3, 7] {
            let e = encode_int_term(&t);
            let pinned = Formula::and(vec![
                e.constraints.clone(),
                Formula::eq(LinearExpr::var(Var::new("x")), LinearExpr::constant(x)),
                Formula::eq(LinearExpr::var(Var::new("r")), e.value.clone()),
            ]);
            match solver.check(&pinned) {
                SolverResult::Sat(m) => {
                    let expected = t.eval(&Example::from_pairs([("x", x)])).unwrap().as_i64();
                    assert_eq!(m.get(&Var::new("r")), Some(expected), "input {x}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
