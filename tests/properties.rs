//! Property-based tests (proptest) for the core data structures and
//! invariants of the reproduction:
//!
//! * semiring laws of semi-linear sets (Prop. 5.8),
//! * exactness of the abstract semantics on sampled terms (Lemma 5.6),
//! * soundness of the symbolic concretization γ̂ (§5.4),
//! * agreement between the QF-LIA solver and brute-force evaluation,
//! * semantic equivalence of the `h(G)` rewriting (Lemma 5.4).

use logic::{Formula, LinearExpr, Solver, SolverResult, Var};
use proptest::prelude::*;
use semilinear::{concretize_semilinear, IntVec, LinearSet, SemiLinearSet};
use sygus::{ExampleSet, Term};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn small_vec(dim: usize) -> impl Strategy<Value = IntVec> {
    prop::collection::vec(-4i64..=4, dim).prop_map(IntVec::from)
}

fn linear_set(dim: usize) -> impl Strategy<Value = LinearSet> {
    (small_vec(dim), prop::collection::vec(small_vec(dim), 0..3))
        .prop_map(|(base, gens)| LinearSet::new(base, gens))
}

fn semilinear(dim: usize) -> impl Strategy<Value = SemiLinearSet> {
    prop::collection::vec(linear_set(dim), 0..3).prop_map(SemiLinearSet::from_linear_sets)
}

fn lia_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-3i64..=3).prop_map(Term::num),
        Just(Term::var("x")),
        Just(Term::var("y")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Term::plus(a, b))
    })
}

// ---------------------------------------------------------------------------
// Semi-linear sets form a commutative idempotent semiring (Prop. 5.8)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn combine_is_commutative_and_idempotent(a in semilinear(2), b in semilinear(2)) {
        prop_assert_eq!(a.combine(&b), b.combine(&a));
        prop_assert_eq!(a.combine(&a), a.clone());
    }

    #[test]
    fn extend_is_commutative_with_identities(a in semilinear(2), b in semilinear(2)) {
        prop_assert_eq!(a.extend(&b), b.extend(&a));
        prop_assert_eq!(a.extend(&SemiLinearSet::one(2)), a.clone());
        prop_assert_eq!(a.extend(&SemiLinearSet::zero()), SemiLinearSet::zero());
    }

    #[test]
    fn extend_distributes_over_combine(a in semilinear(2), b in semilinear(2), c in semilinear(2)) {
        let lhs = a.extend(&b.combine(&c));
        let rhs = a.extend(&b).combine(&a.extend(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn associativity(a in semilinear(2), b in semilinear(2), c in semilinear(2)) {
        prop_assert_eq!(a.combine(&b.combine(&c)), a.combine(&b).combine(&c));
        prop_assert_eq!(a.extend(&b.extend(&c)), a.extend(&b).extend(&c));
    }

    #[test]
    fn pruning_preserves_membership(a in semilinear(2), probe in small_vec(2)) {
        let pruned = a.prune();
        // pruning only removes redundant linear sets, never denoted vectors
        prop_assert_eq!(a.contains(&probe), pruned.contains(&probe));
        for ls in a.linear_sets() {
            prop_assert!(pruned.contains(ls.base()));
        }
    }

    #[test]
    fn star_contains_all_finite_sums(a in linear_set(1)) {
        let sl = SemiLinearSet::from_linear_sets([a.clone()]);
        let star = sl.star();
        // the empty sum and single members are always in the star
        prop_assert!(star.contains(&IntVec::zeros(1)));
        prop_assert!(star.contains(a.base()));
        let doubled = a.base().clone() + a.base().clone();
        prop_assert!(star.contains(&doubled));
    }

    #[test]
    fn projection_zeroes_selected_components(a in semilinear(2), keep_first in any::<bool>()) {
        let mask = [keep_first, !keep_first];
        let projected = a.project(&mask);
        for ls in projected.linear_sets() {
            for (j, &keep) in mask.iter().enumerate() {
                if !keep {
                    prop_assert_eq!(ls.base()[j], 0);
                    for g in ls.generators() {
                        prop_assert_eq!(g[j], 0);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exactness of the abstract semantics and of γ̂
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn term_outputs_are_singleton_semilinear_sets(term in lia_term(), x in -5i64..=5, y in -5i64..=5) {
        // Lemma 5.6's core argument: evaluating a single term abstractly
        // (all operations are ⊗ of singletons) yields exactly its concrete
        // output vector.
        let examples = ExampleSet::from_examples([
            sygus::Example::from_pairs([("x", x), ("y", y)]),
            sygus::Example::from_pairs([("x", x + 1), ("y", y - 1)]),
        ]);
        let concrete = term.eval_on(&examples).unwrap();
        let concrete_vec = IntVec::from(concrete.as_int().unwrap().to_vec());
        // abstract evaluation: fold the term over singleton semi-linear sets
        fn abstract_eval(term: &Term, examples: &ExampleSet) -> SemiLinearSet {
            match term.symbol() {
                sygus::Symbol::Num(c) => SemiLinearSet::singleton(IntVec::splat(*c, examples.len())),
                sygus::Symbol::Var(v) => SemiLinearSet::singleton(IntVec::from(examples.projection(v).unwrap())),
                sygus::Symbol::Plus => term
                    .children()
                    .iter()
                    .map(|c| abstract_eval(c, examples))
                    .fold(SemiLinearSet::one(examples.len()), |acc, s| acc.extend(&s)),
                other => unreachable!("LIA terms only: {other}"),
            }
        }
        let abstracted = abstract_eval(&term, &examples);
        prop_assert_eq!(abstracted.linear_sets().len(), 1);
        prop_assert!(abstracted.contains(&concrete_vec));
        prop_assert!(abstracted.linear_sets()[0].is_singleton());
    }

    #[test]
    fn concretization_agrees_with_membership(sl in semilinear(2), probe in small_vec(2)) {
        let outputs = [Var::new("o_1"), Var::new("o_2")];
        let gamma = concretize_semilinear(&sl, &outputs);
        let pinned = Formula::and(vec![
            gamma,
            Formula::eq(LinearExpr::var(outputs[0].clone()), LinearExpr::constant(probe[0])),
            Formula::eq(LinearExpr::var(outputs[1].clone()), LinearExpr::constant(probe[1])),
        ]);
        let solver_says = Solver::default().check(&pinned).is_sat();
        prop_assert_eq!(solver_says, sl.contains(&probe));
    }
}

// ---------------------------------------------------------------------------
// The QF-LIA solver against brute force
// ---------------------------------------------------------------------------

fn small_formula() -> impl Strategy<Value = Formula> {
    let atom = (
        -3i64..=3,
        -3i64..=3,
        -6i64..=6,
        prop_oneof![Just(0usize), Just(1), Just(2), Just(3)],
    )
        .prop_map(|(a, b, c, rel)| {
            let lhs = LinearExpr::from_terms([(Var::new("x"), a), (Var::new("y"), b)], 0);
            let rhs = LinearExpr::constant(c);
            match rel {
                0 => Formula::eq(lhs, rhs),
                1 => Formula::le(lhs, rhs),
                2 => Formula::gt(lhs, rhs),
                _ => Formula::ne(lhs, rhs),
            }
        });
    prop::collection::vec(atom, 1..4).prop_map(Formula::and)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_models_satisfy_the_formula(f in small_formula()) {
        match Solver::default().check(&f) {
            SolverResult::Sat(model) => prop_assert!(f.eval(&model)),
            SolverResult::Unsat => {
                // brute force over a small box must not find a model either
                for x in -8i64..=8 {
                    for y in -8i64..=8 {
                        let m = logic::Model::from_bindings([(Var::new("x"), x), (Var::new("y"), y)]);
                        prop_assert!(!f.eval(&m), "solver said unsat but ({x},{y}) satisfies {f}");
                    }
                }
            }
            SolverResult::Unknown => {}
        }
    }
}

// ---------------------------------------------------------------------------
// h(G) preserves semantics on sampled derivations (Lemma 5.4)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn minus_rewriting_preserves_output_sets(c1 in -3i64..=3, c2 in -3i64..=3, x in -3i64..=3) {
        use sygus::{GrammarBuilder, Sort, Symbol};
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Minus, &["Start", "Start"])
            .production("Start", Symbol::Num(c1), &[])
            .production("Start", Symbol::Num(c2), &[])
            .production("Start", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let rewritten = sygus::rewrite::to_plus_form(&grammar).unwrap();
        prop_assert!(!rewritten.has_minus());
        let examples = ExampleSet::for_single_var("x", [x]);
        let outputs = |g: &sygus::Grammar| -> std::collections::BTreeSet<i64> {
            g.terms_up_to_size(g.start(), 5, 5000)
                .iter()
                .map(|t| t.eval_on(&examples).unwrap().as_i64(0))
                .collect()
        };
        prop_assert_eq!(outputs(&grammar), outputs(&rewritten));
    }
}
