//! Verification of the non-deterministic recursive program: is the "bad"
//! location (a run of the entry procedure whose return value satisfies the
//! specification on every example) reachable?
//!
//! The original nope hands the program to an off-the-shelf software verifier
//! (SeaHorn, itself built on Spacer). In this reproduction the same
//! obligations are discharged with
//!
//! * an **abstract interpretation** of the program over the
//!   interval × congruence domain of the `chc` crate (sound proofs of
//!   unreachability, i.e. of unrealizability), and
//! * a **bounded concrete exploration** of the program's runs, which can
//!   find a reachable good run and hence prove realizability of `sy_E`.
//!
//! Both analyses operate on the program IR — the indirection through the
//! encoding is exactly the overhead the paper observes when comparing nope
//! against nayHorn.

use crate::program::{ProgExpr, Program};
use chc::domain::{AbsBool, AbsInt, AbsValue};
use logic::{Formula, LinearExpr, Solver, SolverResult, Var};
use runner::Cancel;
use std::collections::BTreeMap;
use sygus::{ExampleSet, Op, Spec, Term, TermArena, TermId};

/// The verdict of the nope-style reachability analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NopeVerdict {
    /// The bad location is unreachable: `sy_E` (and hence `sy`) is
    /// unrealizable.
    Unrealizable,
    /// A concrete run reaching the bad location was found: `sy_E` is
    /// realizable (the returned vector is the witness output).
    RealizableOnExamples(Vec<i64>),
    /// Neither analysis was conclusive.
    Unknown,
    /// The analysis observed a tripped [`Cancel`] token and stopped early
    /// (portfolio racing: the other engine answered first).
    Cancelled,
}

impl NopeVerdict {
    /// Stable lower-case name used by the benchmark report
    /// (`unrealizable`, `realizable`, `unknown`, `cancelled`).
    pub fn name(&self) -> &'static str {
        match self {
            NopeVerdict::Unrealizable => "unrealizable",
            NopeVerdict::RealizableOnExamples(_) => "realizable",
            NopeVerdict::Unknown => "unknown",
            NopeVerdict::Cancelled => "cancelled",
        }
    }
}

/// Marker for a bounded search that stopped because its [`Cancel`] token
/// tripped (distinct from "no witness found within the depth").
#[derive(Debug)]
struct CancelledSearch;

/// Everything [`ProgramVerifier::check_instrumented`] reports alongside
/// the verdict.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The combined verdict of both analyses.
    pub verdict: NopeVerdict,
    /// Fixed-point iterations performed by the abstract interpreter
    /// (0 when the bounded search already decided the verdict).
    pub abstract_iterations: usize,
    /// Number of witness-log nodes the bounded search recorded while
    /// exploring reachable vectors (its peak size — the log only grows;
    /// terms are hash-consed into a [`TermArena`] only when a witness is
    /// demanded).
    pub arena_terms: usize,
    /// The witness *term* behind a
    /// [`NopeVerdict::RealizableOnExamples`] verdict: a term of `L(G)`
    /// whose output vector satisfies the specification on every example.
    pub witness: Option<Term>,
}

/// The sentinel "empty list" head of the [`LazyWitness::Plus`] trail.
const NIL: u32 = u32::MAX;

/// An append-only log of witness nodes. Where the search previously
/// hash-consed one term per vector surviving dedup into a [`TermArena`]
/// (a hash probe each, even for searches that end `Unknown` and never
/// look at a witness), it now records a plain `(op, children)` node per
/// surviving vector — a `Vec` push — and only hash-conses the one chain
/// that is actually demanded, via [`WitnessLog::intern_into`], after a
/// good vector is found.
#[derive(Clone, Debug, Default)]
struct WitnessLog {
    /// `(op, child_start, child_end)` — the child range indexes `children`.
    nodes: Vec<(Op, u32, u32)>,
    /// Child pool: log indices of each node's children, in order.
    children: Vec<u32>,
}

impl WitnessLog {
    /// Appends a node and returns its log index. Children always precede
    /// their parent in the log (the search builds bottom-up), which
    /// [`WitnessLog::intern_into`] relies on.
    fn push(&mut self, op: Op, kids: &[u32]) -> u32 {
        let start = self.children.len() as u32;
        self.children.extend_from_slice(kids);
        let end = self.children.len() as u32;
        self.nodes.push((op, start, end));
        (self.nodes.len() - 1) as u32
    }

    /// Number of nodes recorded (the search-breadth statistic reported as
    /// `arena_terms`).
    fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Hash-conses the term rooted at `root` into `arena`, visiting only
    /// the nodes the witness actually uses.
    fn intern_into(&self, arena: &mut TermArena, root: u32) -> TermId {
        let mut memo: BTreeMap<u32, TermId> = BTreeMap::new();
        let mut stack: Vec<u32> = vec![root];
        while let Some(&r) = stack.last() {
            if memo.contains_key(&r) {
                stack.pop();
                continue;
            }
            let (op, start, end) = self.nodes[r as usize];
            let kids = &self.children[start as usize..end as usize];
            let mut ready = true;
            for &k in kids {
                if !memo.contains_key(&k) {
                    stack.push(k);
                    ready = false;
                }
            }
            if ready {
                let ids: Vec<TermId> = kids.iter().map(|k| memo[k]).collect();
                let id = arena.intern(op, &ids);
                memo.insert(r, id);
                stack.pop();
            }
        }
        memo[&root]
    }
}

/// A witness the expression evaluator has not logged yet. Candidate
/// vectors are produced far faster than they survive dedup, so the
/// per-combination fast path only records *how* a vector was built (a few
/// words, no allocation); a [`WitnessLog`] node is appended once per
/// vector that actually enters a reachable set.
#[derive(Clone, Copy)]
enum LazyWitness {
    /// Already logged: leaves and procedure-call results.
    Ready(u32),
    /// An n-ary `Plus` whose child list is the trail chain at this head.
    Plus(u32),
    /// A unary node over a logged child.
    Un(Op, u32),
    /// A binary node over logged children.
    Bin(Op, u32, u32),
    /// A ternary node over logged children.
    Tri(Op, u32, u32, u32),
}

/// Resolves a lazy witness to a log index. `trail` is the cons-list pool
/// `Plus` heads index into.
fn log_witness(log: &mut WitnessLog, trail: &[(u32, u32)], witness: LazyWitness) -> u32 {
    match witness {
        LazyWitness::Ready(id) => id,
        LazyWitness::Un(op, a) => log.push(op, &[a]),
        LazyWitness::Bin(op, a, b) => log.push(op, &[a, b]),
        LazyWitness::Tri(op, a, b, c) => log.push(op, &[a, b, c]),
        LazyWitness::Plus(mut head) => {
            let mut children: Vec<u32> = Vec::new();
            while head != NIL {
                let (prev, id) = trail[head as usize];
                children.push(id);
                head = prev;
            }
            children.reverse();
            log.push(Op::Plus, &children)
        }
    }
}

/// Configuration of the bounded/abstract program verifier.
#[derive(Clone, Debug)]
pub struct ProgramVerifier {
    /// Number of fixed-point iterations of the abstract interpreter.
    pub max_abstract_iterations: usize,
    /// Widening delay of the abstract interpreter.
    pub widening_delay: usize,
    /// Unrolling depth of the bounded concrete exploration.
    pub unroll_depth: usize,
    /// Cap on the number of distinct concrete vectors tracked per procedure.
    pub max_vectors: usize,
}

impl Default for ProgramVerifier {
    fn default() -> Self {
        ProgramVerifier {
            max_abstract_iterations: 100,
            widening_delay: 3,
            unroll_depth: 8,
            max_vectors: 2000,
        }
    }
}

impl ProgramVerifier {
    /// Creates a verifier with the default budgets.
    pub fn new() -> Self {
        ProgramVerifier::default()
    }

    /// Runs both analyses and combines their verdicts.
    pub fn check(&self, program: &Program, examples: &ExampleSet, spec: &Spec) -> NopeVerdict {
        self.check_counted(program, examples, spec).0
    }

    /// Like [`ProgramVerifier::check`], but also reports how many
    /// fixed-point iterations the abstract interpreter performed (0 when
    /// the bounded search already decided the verdict).
    pub fn check_counted(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
    ) -> (NopeVerdict, usize) {
        self.check_cancellable(program, examples, spec, &Cancel::never())
    }

    /// [`ProgramVerifier::check_counted`] with cooperative cancellation:
    /// the token is polled once per bounded-unrolling round and once per
    /// abstract fixpoint iteration, so a trip is observed within one loop
    /// iteration and the check returns [`NopeVerdict::Cancelled`].
    pub fn check_cancellable(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
        cancel: &Cancel,
    ) -> (NopeVerdict, usize) {
        let outcome = self.check_instrumented(program, examples, spec, cancel);
        (outcome.verdict, outcome.abstract_iterations)
    }

    /// [`ProgramVerifier::check_cancellable`] returning the full
    /// [`CheckOutcome`]: the verdict, the fixpoint iteration count, the
    /// bounded search's term-arena size, and (for realizable-on-examples
    /// verdicts) the witness term the arena reconstructed.
    pub fn check_instrumented(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
        cancel: &Cancel,
    ) -> CheckOutcome {
        let done = |verdict, abstract_iterations, arena_terms, witness| CheckOutcome {
            verdict,
            abstract_iterations,
            arena_terms,
            witness,
        };
        if examples.is_empty() {
            return done(NopeVerdict::Unknown, 0, 0, None);
        }
        // 1. bounded concrete exploration: can we reach the bad location?
        let mut arena = TermArena::new();
        let mut log = WitnessLog::default();
        match self.bounded_search_cancellable(program, examples, spec, cancel, &mut arena, &mut log)
        {
            Ok(Some((witness_vector, witness_ref))) => {
                let witness_id = log.intern_into(&mut arena, witness_ref);
                let witness = arena.extract(witness_id);
                return done(
                    NopeVerdict::RealizableOnExamples(witness_vector),
                    0,
                    log.len(),
                    Some(witness),
                );
            }
            Ok(None) => {}
            Err(CancelledSearch) => return done(NopeVerdict::Cancelled, 0, log.len(), None),
        }
        let arena_terms = log.len();
        // 2. abstract interpretation: is the bad location provably unreachable?
        if cancel.is_cancelled() {
            return done(NopeVerdict::Cancelled, 0, arena_terms, None);
        }
        let (unreachable, iterations) =
            self.abstract_unreachable_cancellable(program, examples, spec, cancel);
        if cancel.is_cancelled() && !unreachable {
            return done(NopeVerdict::Cancelled, iterations, arena_terms, None);
        }
        if unreachable {
            done(NopeVerdict::Unrealizable, iterations, arena_terms, None)
        } else {
            done(NopeVerdict::Unknown, iterations, arena_terms, None)
        }
    }

    /// Bounded unrolling of the recursive program: computes, per procedure,
    /// the set of return vectors realizable within the unrolling depth and
    /// checks the assertion against those of the entry procedure.
    pub fn bounded_search(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
    ) -> Option<Vec<i64>> {
        self.bounded_search_with_term(program, examples, spec)
            .map(|(vector, _)| vector)
    }

    /// [`ProgramVerifier::bounded_search`], additionally reconstructing
    /// the witness *term* (a member of `L(G)` realizing the good vector)
    /// from the ids the search threads through its exploration.
    pub fn bounded_search_with_term(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
    ) -> Option<(Vec<i64>, Term)> {
        let mut arena = TermArena::new();
        let mut log = WitnessLog::default();
        self.bounded_search_cancellable(
            program,
            examples,
            spec,
            &Cancel::never(),
            &mut arena,
            &mut log,
        )
        .expect("a never-tripped token cannot cancel")
        .map(|(vector, r)| {
            let id = log.intern_into(&mut arena, r);
            (vector, arena.extract(id))
        })
    }

    /// [`ProgramVerifier::bounded_search`] polling a [`Cancel`] token once
    /// per unrolling round; `Err(CancelledSearch)` reports an observed
    /// trip. Every reachable vector carries the [`WitnessLog`] index of
    /// the first term found producing it — witnesses stay
    /// [`LazyWitness`]es on the per-combination fast path, vectors
    /// surviving dedup append one log node (no hash-consing), and the
    /// arena only sees the single chain a demanded witness needs, so the
    /// vector sets (and with them every verdict) are exactly the
    /// pre-arena ones.
    fn bounded_search_cancellable(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
        cancel: &Cancel,
        arena: &mut TermArena,
        log: &mut WitnessLog,
    ) -> Result<Option<(Vec<i64>, u32)>, CancelledSearch> {
        let n = program.procedures.len();
        let mut reachable: Vec<BTreeMap<Vec<i64>, u32>> = vec![BTreeMap::new(); n];
        let mut trail: Vec<(u32, u32)> = Vec::new();
        for _ in 0..self.unroll_depth {
            if cancel.is_cancelled() {
                return Err(CancelledSearch);
            }
            let mut changed = false;
            for (i, proc_) in program.procedures.iter().enumerate() {
                let mut new_vectors: BTreeMap<Vec<i64>, u32> = BTreeMap::new();
                for branch in &proc_.branches {
                    self.eval_bounded(
                        branch,
                        &reachable,
                        program.dim,
                        arena,
                        log,
                        &mut trail,
                        &mut new_vectors,
                    );
                    if new_vectors.len() > self.max_vectors {
                        break;
                    }
                }
                for (v, w) in new_vectors {
                    if reachable[i].len() >= self.max_vectors {
                        break;
                    }
                    if let std::collections::btree_map::Entry::Vacant(slot) = reachable[i].entry(v)
                    {
                        slot.insert(w);
                        changed = true;
                    }
                }
            }
            // check the assertion on the entry procedure's vectors
            for (v, w) in &reachable[program.entry] {
                let good = examples
                    .iter()
                    .enumerate()
                    .all(|(j, e)| spec.holds(e, v[j]));
                if good {
                    return Ok(Some((v.clone(), *w)));
                }
            }
            if !changed {
                break;
            }
        }
        Ok(None)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_bounded(
        &self,
        expr: &ProgExpr,
        reachable: &[BTreeMap<Vec<i64>, u32>],
        dim: usize,
        arena: &mut TermArena,
        log: &mut WitnessLog,
        trail: &mut Vec<(u32, u32)>,
        out: &mut BTreeMap<Vec<i64>, u32>,
    ) {
        trail.clear();
        let entries = self.eval_expr(expr, reachable, dim, arena, log, trail);
        for (v, w) in entries {
            if out.len() >= self.max_vectors {
                return;
            }
            if let std::collections::btree_map::Entry::Vacant(slot) = out.entry(v) {
                slot.insert(log_witness(log, trail, w));
            }
        }
    }

    /// Resolves every entry's witness to a log index (used where lazy
    /// witnesses become children of another node).
    fn forced(
        log: &mut WitnessLog,
        trail: &[(u32, u32)],
        entries: Vec<(Vec<i64>, LazyWitness)>,
    ) -> Vec<(Vec<i64>, u32)> {
        entries
            .into_iter()
            .map(|(v, w)| (v, log_witness(log, trail, w)))
            .collect()
    }

    /// Evaluates one branch expression to the vectors it can produce, each
    /// paired with a lazy witness. The enumeration (and capping) order is
    /// exactly the pre-arena one.
    #[allow(clippy::too_many_arguments)]
    fn eval_expr(
        &self,
        expr: &ProgExpr,
        reachable: &[BTreeMap<Vec<i64>, u32>],
        dim: usize,
        arena: &mut TermArena,
        log: &mut WitnessLog,
        trail: &mut Vec<(u32, u32)>,
    ) -> Vec<(Vec<i64>, LazyWitness)> {
        type Valued = Vec<(Vec<i64>, LazyWitness)>;
        let cap = self.max_vectors;
        let combine2 = |a: Vec<(Vec<i64>, u32)>,
                        b: Vec<(Vec<i64>, u32)>,
                        f: &dyn Fn(i64, i64) -> i64,
                        op: Op| {
            let mut out: Valued = Vec::new();
            'outer: for (xv, xw) in &a {
                for (yv, yw) in &b {
                    let vector = (0..dim).map(|j| f(xv[j], yv[j])).collect();
                    out.push((vector, LazyWitness::Bin(op, *xw, *yw)));
                    if out.len() >= cap {
                        break 'outer;
                    }
                }
            }
            out
        };
        // Evaluates a child expression with every witness forced (children
        // of compound nodes must be log indices; in the programs
        // `from_grammar` builds, children are `Call`/`Const` and forcing
        // is a no-op).
        macro_rules! child {
            ($e:expr) => {{
                let entries = self.eval_expr($e, reachable, dim, arena, log, trail);
                Self::forced(log, trail, entries)
            }};
        }
        match expr {
            ProgExpr::Const(v, symbol) => {
                let op = arena.op_from_symbol(symbol);
                vec![(v.clone(), LazyWitness::Ready(log.push(op, &[])))]
            }
            ProgExpr::Call(p) => reachable[*p]
                .iter()
                .map(|(v, w)| (v.clone(), LazyWitness::Ready(*w)))
                .collect(),
            ProgExpr::Add(xs) => {
                // n-ary: witnesses accumulate as cons-list heads into the
                // trail (one O(1) push per combination), and the one Plus
                // node with the production's arity is only built for
                // vectors that survive dedup.
                let mut acc: Vec<(Vec<i64>, u32)> = vec![(vec![0i64; dim], NIL)];
                for x in xs {
                    let vals = child!(x);
                    let mut next = Vec::new();
                    'outer: for (av, ahead) in &acc {
                        for (bv, bw) in &vals {
                            trail.push((*ahead, *bw));
                            let head = (trail.len() - 1) as u32;
                            next.push((
                                (0..dim).map(|j| av[j] + bv[j]).collect::<Vec<i64>>(),
                                head,
                            ));
                            if next.len() >= cap {
                                break 'outer;
                            }
                        }
                    }
                    acc = next;
                    if acc.is_empty() {
                        return Vec::new();
                    }
                }
                acc.into_iter()
                    .map(|(v, head)| (v, LazyWitness::Plus(head)))
                    .collect()
            }
            ProgExpr::Sub(a, b) => combine2(child!(a), child!(b), &|x, y| x - y, Op::Minus),
            ProgExpr::Less(a, b) => {
                combine2(child!(a), child!(b), &|x, y| i64::from(x < y), Op::LessThan)
            }
            ProgExpr::Equal(a, b) => {
                combine2(child!(a), child!(b), &|x, y| i64::from(x == y), Op::Equal)
            }
            ProgExpr::And(a, b) => combine2(child!(a), child!(b), &|x, y| x & y, Op::And),
            ProgExpr::Or(a, b) => combine2(child!(a), child!(b), &|x, y| x | y, Op::Or),
            ProgExpr::Not(a) => child!(a)
                .into_iter()
                .map(|(v, w)| {
                    (
                        v.into_iter().map(|x| 1 - x).collect(),
                        LazyWitness::Un(Op::Not, w),
                    )
                })
                .collect(),
            ProgExpr::Ite(c, t, e) => {
                let guards = child!(c);
                let thens = child!(t);
                let elses = child!(e);
                let mut out: Valued = Vec::new();
                'outer: for (gv, gw) in &guards {
                    for (tv, tw) in &thens {
                        for (ev, ew) in &elses {
                            let vector = (0..dim)
                                .map(|j| if gv[j] == 1 { tv[j] } else { ev[j] })
                                .collect();
                            out.push((vector, LazyWitness::Tri(Op::IfThenElse, *gw, *tw, *ew)));
                            if out.len() >= cap {
                                break 'outer;
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Abstract interpretation over intervals × congruences: returns `true`
    /// when the bad location is provably unreachable.
    pub fn abstract_unreachable(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
    ) -> bool {
        self.abstract_unreachable_counted(program, examples, spec).0
    }

    /// Like [`ProgramVerifier::abstract_unreachable`], but also reports the
    /// number of fixed-point iterations performed before convergence (or
    /// the configured cap, if the iteration never stabilised).
    pub fn abstract_unreachable_counted(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
    ) -> (bool, usize) {
        self.abstract_unreachable_cancellable(program, examples, spec, &Cancel::never())
    }

    /// The abstract fixpoint with a [`Cancel`] token polled once per
    /// iteration. On a trip the iteration stops where it is; the partial
    /// result is only a *sound over-approximation so far*, so the caller
    /// must treat a cancelled run's `false` as "no verdict", never as
    /// "reachable".
    fn abstract_unreachable_cancellable(
        &self,
        program: &Program,
        examples: &ExampleSet,
        spec: &Spec,
        cancel: &Cancel,
    ) -> (bool, usize) {
        let n = program.procedures.len();
        let mut values: Vec<AbsValue> = vec![AbsValue::Bottom; n];
        let mut iterations_run = 0;
        for iteration in 0..self.max_abstract_iterations {
            if cancel.is_cancelled() {
                return (false, iterations_run);
            }
            iterations_run = iteration + 1;
            let mut changed = false;
            let mut next = values.clone();
            for (i, proc_) in program.procedures.iter().enumerate() {
                let mut acc = AbsValue::Bottom;
                for branch in &proc_.branches {
                    let v = self.abstract_expr(branch, &values, program.dim);
                    if !v.is_bottom() {
                        acc = acc.join(&v);
                    }
                }
                let new = if iteration >= self.widening_delay {
                    values[i].widen(&acc)
                } else if values[i].is_bottom() {
                    acc
                } else {
                    values[i].join(&acc)
                };
                if new != values[i] {
                    changed = true;
                }
                next[i] = new;
            }
            values = next;
            if !changed {
                break;
            }
        }

        let outputs: Vec<Var> = (0..examples.len())
            .map(|j| Var::indexed("o", j + 1))
            .collect();
        let gamma = match &values[program.entry] {
            AbsValue::Bottom => return (true, iterations_run),
            AbsValue::Int(components) => Formula::and(
                components
                    .iter()
                    .enumerate()
                    .map(|(j, a)| a.to_formula(&outputs[j], &format!("k_{j}"))),
            ),
            AbsValue::Bool(components) => {
                Formula::and(components.iter().enumerate().map(|(j, b)| {
                    let o = LinearExpr::var(outputs[j].clone());
                    match b {
                        AbsBool::True => Formula::eq(o, LinearExpr::constant(1)),
                        AbsBool::False => Formula::eq(o, LinearExpr::constant(0)),
                        AbsBool::Top => Formula::and(vec![
                            Formula::ge(o.clone(), LinearExpr::constant(0)),
                            Formula::le(o, LinearExpr::constant(1)),
                        ]),
                    }
                }))
            }
        };
        let query = Formula::and(vec![gamma, spec.conjunction_over(examples, &outputs)]);
        (
            matches!(Solver::default().check(&query), SolverResult::Unsat),
            iterations_run,
        )
    }

    fn abstract_expr(&self, expr: &ProgExpr, values: &[AbsValue], dim: usize) -> AbsValue {
        let int = |v: &AbsValue| -> Option<Vec<AbsInt>> {
            match v {
                AbsValue::Int(x) => Some(x.clone()),
                AbsValue::Bool(x) => Some(
                    x.iter()
                        .map(|b| match b {
                            AbsBool::True => AbsInt::constant(1),
                            AbsBool::False => AbsInt::constant(0),
                            AbsBool::Top => AbsInt::constant(0).join(&AbsInt::constant(1)),
                        })
                        .collect(),
                ),
                AbsValue::Bottom => None,
            }
        };
        let boolean = |v: &AbsValue| -> Option<Vec<AbsBool>> {
            match v {
                AbsValue::Bool(x) => Some(x.clone()),
                AbsValue::Int(x) => Some(
                    x.iter()
                        .map(|a| {
                            if a.contains(0) && !a.contains(1) {
                                AbsBool::False
                            } else if a.contains(1) && !a.contains(0) {
                                AbsBool::True
                            } else {
                                AbsBool::Top
                            }
                        })
                        .collect(),
                ),
                AbsValue::Bottom => None,
            }
        };
        match expr {
            ProgExpr::Const(v, _) => {
                AbsValue::Int(v.iter().map(|&c| AbsInt::constant(c)).collect())
            }
            ProgExpr::Call(p) => values[*p].clone(),
            ProgExpr::Add(xs) => {
                let mut acc = vec![AbsInt::constant(0); dim];
                for x in xs {
                    let Some(v) = int(&self.abstract_expr(x, values, dim)) else {
                        return AbsValue::Bottom;
                    };
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a = a.add(&b);
                    }
                }
                AbsValue::Int(acc)
            }
            ProgExpr::Sub(a, b) => {
                let (Some(x), Some(y)) = (
                    int(&self.abstract_expr(a, values, dim)),
                    int(&self.abstract_expr(b, values, dim)),
                ) else {
                    return AbsValue::Bottom;
                };
                AbsValue::Int(x.iter().zip(&y).map(|(p, q)| p.add(&q.neg())).collect())
            }
            ProgExpr::Ite(c, t, e) => {
                let (Some(g), Some(tv), Some(ev)) = (
                    boolean(&self.abstract_expr(c, values, dim)),
                    int(&self.abstract_expr(t, values, dim)),
                    int(&self.abstract_expr(e, values, dim)),
                ) else {
                    return AbsValue::Bottom;
                };
                AbsValue::Int(
                    (0..dim)
                        .map(|j| match g[j] {
                            AbsBool::True => tv[j],
                            AbsBool::False => ev[j],
                            AbsBool::Top => tv[j].join(&ev[j]),
                        })
                        .collect(),
                )
            }
            ProgExpr::Less(a, b) => {
                let (Some(x), Some(y)) = (
                    int(&self.abstract_expr(a, values, dim)),
                    int(&self.abstract_expr(b, values, dim)),
                ) else {
                    return AbsValue::Bottom;
                };
                AbsValue::Bool((0..dim).map(|j| AbsBool::less_than(&x[j], &y[j])).collect())
            }
            ProgExpr::Equal(a, b) => {
                let (Some(x), Some(y)) = (
                    int(&self.abstract_expr(a, values, dim)),
                    int(&self.abstract_expr(b, values, dim)),
                ) else {
                    return AbsValue::Bottom;
                };
                AbsValue::Bool(
                    (0..dim)
                        .map(|j| {
                            if AbsBool::less_than(&x[j], &y[j]) == AbsBool::True
                                || AbsBool::less_than(&y[j], &x[j]) == AbsBool::True
                            {
                                AbsBool::False
                            } else {
                                AbsBool::Top
                            }
                        })
                        .collect(),
                )
            }
            ProgExpr::And(a, b) | ProgExpr::Or(a, b) => {
                let (Some(x), Some(y)) = (
                    boolean(&self.abstract_expr(a, values, dim)),
                    boolean(&self.abstract_expr(b, values, dim)),
                ) else {
                    return AbsValue::Bottom;
                };
                AbsValue::Bool(
                    (0..dim)
                        .map(|j| {
                            if matches!(expr, ProgExpr::And(_, _)) {
                                x[j].and(&y[j])
                            } else {
                                x[j].or(&y[j])
                            }
                        })
                        .collect(),
                )
            }
            ProgExpr::Not(a) => {
                let Some(x) = boolean(&self.abstract_expr(a, values, dim)) else {
                    return AbsValue::Bottom;
                };
                AbsValue::Bool(x.iter().map(|b| b.not()).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use logic::{LinearExpr, Var};
    use sygus::{Grammar, GrammarBuilder, Sort, Symbol};

    fn g1() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap()
    }

    fn spec_2x_plus_2() -> Spec {
        Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        )
    }

    #[test]
    fn unreachability_proves_unrealizability() {
        let examples = ExampleSet::for_single_var("x", [1]);
        let program = Program::from_grammar(&g1(), &examples);
        let verdict = ProgramVerifier::new().check(&program, &examples, &spec_2x_plus_2());
        assert_eq!(verdict, NopeVerdict::Unrealizable);
    }

    #[test]
    fn bounded_search_finds_good_runs() {
        // With x = 2 the output 6 is producible (3·2), so the bad location is
        // reachable and the verifier reports the witness.
        let examples = ExampleSet::for_single_var("x", [2]);
        let program = Program::from_grammar(&g1(), &examples);
        match ProgramVerifier::new().check(&program, &examples, &spec_2x_plus_2()) {
            NopeVerdict::RealizableOnExamples(witness) => assert_eq!(witness, vec![6]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bounded_search_reconstructs_a_derivable_witness_term() {
        // The lazy witnesses threaded through the exploration must denote a
        // real grammar term whose outputs are the good vector.
        let grammar = g1();
        let examples = ExampleSet::for_single_var("x", [2]);
        let program = Program::from_grammar(&grammar, &examples);
        let (vector, term) = ProgramVerifier::new()
            .bounded_search_with_term(&program, &examples, &spec_2x_plus_2())
            .expect("x = 2 has the good run 3·2 = 6");
        assert_eq!(vector, vec![6]);
        assert!(
            grammar.contains_term(&term),
            "witness {term} must be in L(G)"
        );
        let out = term.eval_on(&examples).unwrap();
        assert_eq!(out, sygus::Output::Int(vector));
        // the instrumented check agrees and reports the same witness
        let outcome = ProgramVerifier::new().check_instrumented(
            &program,
            &examples,
            &spec_2x_plus_2(),
            &Cancel::never(),
        );
        assert!(matches!(
            outcome.verdict,
            NopeVerdict::RealizableOnExamples(_)
        ));
        assert_eq!(outcome.witness.as_ref(), Some(&term));
        assert!(outcome.arena_terms > 0);
    }

    #[test]
    fn ite_and_boolean_witnesses_are_derivable() {
        // A CLIA grammar exercising Ite/Less lazy witnesses end to end.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::Var("x".to_string()), &[])
            .production("Start", Symbol::Num(7), &[])
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .unwrap();
        let spec = Spec::output_equals(LinearExpr::constant(7), vec!["x".to_string()]);
        let examples = ExampleSet::for_single_var("x", [3]);
        let program = Program::from_grammar(&grammar, &examples);
        let (vector, term) = ProgramVerifier::new()
            .bounded_search_with_term(&program, &examples, &spec)
            .expect("the constant 7 is derivable");
        assert_eq!(vector, vec![7]);
        assert!(grammar.contains_term(&term), "witness {term} not in L(G)");
        assert_eq!(term.eval_on(&examples).unwrap(), sygus::Output::Int(vector));
    }

    #[test]
    fn coarse_abstraction_yields_unknown() {
        // Gconst with spec f(x) > x on x = 1: realizable... the bounded search
        // will find 2 > 1 quickly, so this is actually Realizable; to force
        // Unknown we use a spec that is unrealizable but not refutable by the
        // interval/congruence domain: f(x) = 7 over sums of 1 and 2 with at
        // least... sums of {1,2} eventually hit 7, so pick f(x) = 0 instead:
        // all sums are ≥ 1, interval refutes it — still Unrealizable. A truly
        // Unknown case needs values that the domain cannot separate, e.g.
        // f(x) = x over a grammar producing 1 and 3 only (x = 2):
        // join(1, 3) = [1,3] with modulus 2 … 2 is even, 1 and 3 are odd, so
        // the congruence does refute it. Use modulus-breaking constants 1, 2
        // and target 3 ∉ {1,2} but 3 ∈ [1,2]∪… join(1,2) = [1,2] top modulus;
        // target 3 is outside the interval → still refuted. Final choice:
        // constants 1 and 4, target 3: join = [1,4], gcd(3) → 1 mod 3;
        // 3 ≢ 1 (mod 3) → refuted again. The point stands that the domain is
        // strong on constant sets, so instead take a recursive grammar whose
        // language is {1, 4, 7, …} ∪ {2}: join breaks both components.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("Three", Sort::Int)
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Num(2), &[])
            .production("Start", Symbol::Plus, &["Start", "Three"])
            .production("Three", Symbol::Num(3), &[])
            .build()
            .unwrap();
        // language: 1, 2, 4, 5, 7, 8, … (all n with n mod 3 ∈ {1, 2});
        // target 6 is unreachable but interval [1,∞) + congruence top cannot
        // prove it, and the bounded search cannot reach it either → Unknown.
        let spec = Spec::output_equals(LinearExpr::constant(6), vec!["x".to_string()]);
        let examples = ExampleSet::for_single_var("x", [0]);
        let program = Program::from_grammar(&grammar, &examples);
        let verdict = ProgramVerifier::new().check(&program, &examples, &spec);
        assert_eq!(verdict, NopeVerdict::Unknown);
    }
}
