//! The `reproduce analyze` front-end: run the static analyzer (crate
//! `analyze`) over on-disk SyGuS-IF files and emit diagnostics plus a
//! runner-schema JSON report.
//!
//! Per file the report contains one `analyze` entry whose verdict is the
//! presolve verdict (`unrealizable` / `realizable` / `unknown`), or
//! `ill-formed` when the well-formedness checker found errors; the
//! `iterations` field carries the diagnostic count so a corpus-wide
//! "analyzer-clean" gate is a single glance at the JSON.

use crate::problem_name;
use analyze::{AnalysisReport, PresolveVerdict, Severity};
use runner::{measure, Entry, JobStatus, Report};
use std::path::PathBuf;

/// One analyzed file: the analyzer's full report plus presentation data.
#[derive(Clone, Debug)]
pub struct AnalyzeRow {
    /// Benchmark (file stem).
    pub name: String,
    /// The path, for `file:line:col` diagnostic prefixes.
    pub path: PathBuf,
    /// The analyzer's report.
    pub report: AnalysisReport,
    /// Wall-clock milliseconds of the analysis.
    pub millis: f64,
}

/// Runs the analyzer over the files and returns the rows plus the
/// runner-schema JSON [`Report`] (suite `analyze`).
///
/// # Errors
/// Returns the first file that cannot be read. Parse and semantic errors
/// are *not* run errors — they come back as diagnostics.
pub fn run_analyze(files: &[PathBuf]) -> Result<(Vec<AnalyzeRow>, Report), String> {
    let mut rows: Vec<AnalyzeRow> = Vec::new();
    let mut entries: Vec<Entry> = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let name = problem_name(path);
        let (report, elapsed) = measure(|| analyze::analyze_source(&text, &name));
        let millis = elapsed.as_secs_f64() * 1000.0;
        let verdict = if report.error_count() > 0 {
            "ill-formed".to_string()
        } else {
            report
                .presolve
                .as_ref()
                .map(|p| p.verdict.name().to_string())
                .unwrap_or_else(|| "unknown".to_string())
        };
        entries.push(Entry {
            benchmark: name.clone(),
            tool: "analyze".into(),
            status: JobStatus::Ok,
            verdict,
            proved: report
                .presolve
                .as_ref()
                .is_some_and(|p| p.verdict == PresolveVerdict::Unrealizable),
            iterations: report.diagnostics.len() as u64,
            millis,
            tainted: false,
            family: String::new(),
        });
        rows.push(AnalyzeRow {
            name,
            path: path.clone(),
            report,
            millis,
        });
    }
    Ok((rows, Report::new("analyze", entries)))
}

/// Renders the human-readable analyze output: every diagnostic as
/// `file:line:col: severity[code]: message`, then one summary line per
/// file and a sweep total.
pub fn render_analyze(rows: &[AnalyzeRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for row in rows {
        for d in &row.report.diagnostics {
            let _ = writeln!(out, "{}:{d}", row.path.display());
        }
    }
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>6} {:>9} {:>7} {:>12} {:>9}  presolve",
        "benchmark", "errors", "warns", "NTs", "prods", "useless", "language"
    );
    for row in rows {
        let (nts, prods, useless, language) = match &row.report.grammar {
            Some(g) => (
                g.num_nonterminals.to_string(),
                g.num_productions.to_string(),
                g.useless_productions.len().to_string(),
                match &g.finite {
                    _ if g.empty_language => "empty".to_string(),
                    Some(f) if f.complete => format!("finite({})", f.terms.len()),
                    Some(_) => "finite(big)".to_string(),
                    None => "infinite".to_string(),
                },
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        let presolve = match &row.report.presolve {
            Some(p) => format!("{} ({})", p.verdict, p.reason),
            None => "- (did not parse)".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>6} {:>9} {:>7} {:>12} {:>9}  {}",
            row.name,
            row.report.error_count(),
            row.report.warning_count(),
            nts,
            prods,
            useless,
            language,
            presolve
        );
    }
    let errors: usize = rows.iter().map(|r| r.report.error_count()).sum();
    let warnings: usize = rows.iter().map(|r| r.report.warning_count()).sum();
    let settled = rows
        .iter()
        .filter(|r| {
            r.report
                .presolve
                .as_ref()
                .is_some_and(|p| p.is_definitive())
        })
        .count();
    let _ = writeln!(
        out,
        "{} file(s): {errors} error(s), {warnings} warning(s); presolve settled {settled} statically",
        rows.len()
    );
    out
}

/// `true` when any file produced an error-severity diagnostic — the exit
/// gate of `reproduce analyze`.
pub fn has_analyze_errors(rows: &[AnalyzeRow]) -> bool {
    rows.iter().any(|r| {
        r.report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn write_temp(dir: &Path, name: &str, text: &str) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, text).expect("write temp file");
        path
    }

    #[test]
    fn analyze_reports_clean_and_broken_files() {
        let dir = std::env::temp_dir().join("bench-analysis-test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let clean = write_temp(
            &dir,
            "clean.sl",
            "(set-logic LIA)\n(synth-fun f ((x Int)) Int ((Start Int (x 0 (+ Start Start)))))\n(declare-var x Int)\n(constraint (= (f x) x))\n(check-synth)\n",
        );
        let broken = write_temp(
            &dir,
            "broken.sl",
            "(set-logic LIA)\n(synth-fun f ((x Int)) Int ((Start Int (y))))\n(constraint (= (f x) x))\n(check-synth)\n",
        );
        let (rows, report) = run_analyze(&[clean, broken]).expect("runs");
        assert_eq!(rows.len(), 2);
        assert_eq!(report.suite, "analyze");
        assert!(
            rows[0].report.is_clean(),
            "{:?}",
            rows[0].report.diagnostics
        );
        assert!(rows[1].report.error_count() > 0);
        assert!(has_analyze_errors(&rows));
        let rendered = render_analyze(&rows);
        assert!(rendered.contains("broken.sl:"));
        assert!(rendered.contains("error(s)"));
        let broken_entry = report
            .entries
            .iter()
            .find(|e| e.benchmark == "broken")
            .expect("entry for broken.sl");
        assert_eq!(broken_entry.verdict, "ill-formed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
