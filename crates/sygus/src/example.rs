//! Input examples and output vectors (the `⟦·⟧_E` machinery of Ex. 3.6).

use crate::term::Sort;
use crate::SygusError;
use std::collections::BTreeMap;
use std::fmt;

/// A single input example: an assignment of integer values to the input
/// variables of the function being synthesized.
///
/// # Example
/// ```
/// use sygus::Example;
/// let e = Example::from_pairs([("x", 1)]);
/// assert_eq!(e.get("x"), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Example {
    values: BTreeMap<String, i64>,
}

impl Example {
    /// Creates an empty example (for functions with no inputs).
    pub fn new() -> Self {
        Example::default()
    }

    /// Creates an example from `(variable, value)` pairs.
    pub fn from_pairs<S: Into<String>>(pairs: impl IntoIterator<Item = (S, i64)>) -> Self {
        Example {
            values: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Sets the value of an input variable.
    pub fn set(&mut self, var: impl Into<String>, value: i64) {
        self.values.insert(var.into(), value);
    }

    /// Looks up the value of an input variable.
    pub fn get(&self, var: &str) -> Option<i64> {
        self.values.get(var).copied()
    }

    /// The input variables bound by this example.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(|s| s.as_str())
    }

    /// Iterates over `(variable, value)` bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl fmt::Debug for Example {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Example {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "⟩")
    }
}

/// An ordered, finite set of input examples `E = ⟨i₁, …, iₙ⟩` (Def. 3.4).
///
/// The order matters: output vectors are indexed by example position.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct ExampleSet {
    examples: Vec<Example>,
}

impl ExampleSet {
    /// Creates an empty example set.
    pub fn new() -> Self {
        ExampleSet::default()
    }

    /// Creates an example set from examples.
    pub fn from_examples(examples: impl IntoIterator<Item = Example>) -> Self {
        ExampleSet {
            examples: examples.into_iter().collect(),
        }
    }

    /// For a single-input function: builds the example set `⟨x=v₁, …⟩`.
    pub fn for_single_var(var: &str, values: impl IntoIterator<Item = i64>) -> Self {
        ExampleSet::from_examples(values.into_iter().map(|v| Example::from_pairs([(var, v)])))
    }

    /// Appends an example, returning its index.
    pub fn push(&mut self, example: Example) -> usize {
        self.examples.push(example);
        self.examples.len() - 1
    }

    /// The number of examples `|E|`.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// `true` when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The examples in order.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Iterates over the examples in order.
    pub fn iter(&self) -> impl Iterator<Item = &Example> {
        self.examples.iter()
    }

    /// `μ_E(x)`: the vector of values of input variable `x` across all
    /// examples (Ex. 3.6).
    ///
    /// # Errors
    /// Returns an error if some example does not bind `x`.
    pub fn projection(&self, var: &str) -> Result<Vec<i64>, SygusError> {
        self.examples
            .iter()
            .map(|e| {
                e.get(var).ok_or_else(|| {
                    SygusError::EvalError(format!("example {e} does not bind variable {var}"))
                })
            })
            .collect()
    }

    /// `true` when the example set already contains an identical example.
    pub fn contains(&self, example: &Example) -> bool {
        self.examples.contains(example)
    }
}

impl fmt::Debug for ExampleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ExampleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.examples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Example> for ExampleSet {
    fn from_iter<T: IntoIterator<Item = Example>>(iter: T) -> Self {
        ExampleSet::from_examples(iter)
    }
}

/// The vector of outputs `⟦e⟧_E` of a term across all examples: either an
/// integer vector or a Boolean vector, depending on the term's sort.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Output {
    /// Outputs of an integer-sorted term.
    Int(Vec<i64>),
    /// Outputs of a Boolean-sorted term.
    Bool(Vec<bool>),
}

impl Output {
    /// The sort of the output vector.
    pub fn sort(&self) -> Sort {
        match self {
            Output::Int(_) => Sort::Int,
            Output::Bool(_) => Sort::Bool,
        }
    }

    /// The number of components (= number of examples).
    pub fn len(&self) -> usize {
        match self {
            Output::Int(v) => v.len(),
            Output::Bool(v) => v.len(),
        }
    }

    /// `true` when there are no components.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The integer components, if integer-sorted.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Output::Int(v) => Some(v),
            Output::Bool(_) => None,
        }
    }

    /// The Boolean components, if Boolean-sorted.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Output::Bool(v) => Some(v),
            Output::Int(_) => None,
        }
    }

    /// The `j`-th output as an integer, encoding Booleans as 0/1.
    pub fn as_i64(&self, j: usize) -> i64 {
        match self {
            Output::Int(v) => v[j],
            Output::Bool(v) => i64::from(v[j]),
        }
    }
}

impl fmt::Display for Output {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Output::Int(v) => write!(f, "{v:?}"),
            Output::Bool(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_matches_paper_example() {
        // E = ⟨x=1, x=2⟩, μ_E(x) = (1, 2)
        let e = ExampleSet::for_single_var("x", [1, 2]);
        assert_eq!(e.projection("x").unwrap(), vec![1, 2]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn missing_variable_is_an_error() {
        let e = ExampleSet::from_examples([Example::from_pairs([("x", 1)])]);
        assert!(e.projection("y").is_err());
    }

    #[test]
    fn multi_variable_examples() {
        let e = ExampleSet::from_examples([
            Example::from_pairs([("x", 1), ("y", 10)]),
            Example::from_pairs([("x", 2), ("y", 20)]),
            Example::from_pairs([("x", 3), ("y", 30)]),
        ]);
        assert_eq!(e.projection("x").unwrap(), vec![1, 2, 3]);
        assert_eq!(e.projection("y").unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn output_accessors() {
        let int = Output::Int(vec![4, 6]);
        assert_eq!(int.sort(), Sort::Int);
        assert_eq!(int.as_int(), Some(&[4i64, 6][..]));
        assert_eq!(int.as_i64(1), 6);
        let b = Output::Bool(vec![true, false]);
        assert_eq!(b.sort(), Sort::Bool);
        assert_eq!(b.as_i64(0), 1);
        assert_eq!(b.as_i64(1), 0);
    }

    #[test]
    fn duplicate_detection() {
        let mut e = ExampleSet::new();
        let ex = Example::from_pairs([("x", 5)]);
        e.push(ex.clone());
        assert!(e.contains(&ex));
        assert!(!e.contains(&Example::from_pairs([("x", 6)])));
    }
}
