//! Boolean vectors and finite sets of Boolean vectors — the abstract domain
//! for Boolean nonterminals in CLIA grammars (§6.2).

use std::collections::BTreeSet;
use std::fmt;

/// A Boolean vector, one component per input example.
///
/// # Example
/// ```
/// use semilinear::BoolVec;
/// let b = BoolVec::from(vec![true, false]);
/// assert_eq!(!b.clone(), BoolVec::from(vec![false, true]));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BoolVec(Vec<bool>);

impl BoolVec {
    /// Creates a Boolean vector from components.
    pub fn new(components: Vec<bool>) -> Self {
        BoolVec(components)
    }

    /// The all-true vector of dimension `dim`.
    pub fn trues(dim: usize) -> Self {
        BoolVec(vec![true; dim])
    }

    /// The all-false vector of dimension `dim`.
    pub fn falses(dim: usize) -> Self {
        BoolVec(vec![false; dim])
    }

    /// The dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[bool] {
        &self.0
    }

    /// Component-wise conjunction.
    pub fn and(&self, other: &BoolVec) -> BoolVec {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        BoolVec(self.0.iter().zip(&other.0).map(|(a, b)| *a && *b).collect())
    }

    /// Component-wise disjunction.
    pub fn or(&self, other: &BoolVec) -> BoolVec {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        BoolVec(self.0.iter().zip(&other.0).map(|(a, b)| *a || *b).collect())
    }

    /// Component-wise negation.
    pub fn negate(&self) -> BoolVec {
        BoolVec(self.0.iter().map(|b| !b).collect())
    }

    /// Enumerates all `2^dim` Boolean vectors of a dimension.
    pub fn all(dim: usize) -> Vec<BoolVec> {
        let mut out = Vec::with_capacity(1 << dim);
        for bits in 0..(1u64 << dim) {
            out.push(BoolVec((0..dim).map(|i| bits >> i & 1 == 1).collect()));
        }
        out
    }
}

impl From<Vec<bool>> for BoolVec {
    fn from(v: Vec<bool>) -> Self {
        BoolVec(v)
    }
}

impl std::ops::Not for BoolVec {
    type Output = BoolVec;
    fn not(self) -> BoolVec {
        self.negate()
    }
}

impl std::ops::Index<usize> for BoolVec {
    type Output = bool;
    fn index(&self, i: usize) -> &bool {
        &self.0[i]
    }
}

impl fmt::Debug for BoolVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BoolVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", if *b { "t" } else { "f" })?;
        }
        write!(f, ")")
    }
}

/// A finite set of Boolean vectors — the abstract value of a Boolean
/// nonterminal (§6.2). The domain has at most `2^|E|` elements, so
/// fixed-point iteration over it always terminates (Lemma 6.5).
///
/// # Example
/// ```
/// use semilinear::{BoolVec, BoolVecSet};
/// let s = BoolVecSet::from_vecs([BoolVec::from(vec![true, false])]);
/// let n = s.not();
/// assert!(n.contains(&BoolVec::from(vec![false, true])));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BoolVecSet {
    vecs: BTreeSet<BoolVec>,
}

impl BoolVecSet {
    /// The empty set (bottom of the domain).
    pub fn empty() -> Self {
        BoolVecSet::default()
    }

    /// A singleton set.
    pub fn singleton(v: BoolVec) -> Self {
        BoolVecSet {
            vecs: std::iter::once(v).collect(),
        }
    }

    /// Builds a set from Boolean vectors.
    pub fn from_vecs(vs: impl IntoIterator<Item = BoolVec>) -> Self {
        BoolVecSet {
            vecs: vs.into_iter().collect(),
        }
    }

    /// The full domain `𝔹^dim` (all `2^dim` vectors).
    pub fn top(dim: usize) -> Self {
        BoolVecSet::from_vecs(BoolVec::all(dim))
    }

    /// Membership test.
    pub fn contains(&self, v: &BoolVec) -> bool {
        self.vecs.contains(v)
    }

    /// Number of vectors in the set.
    pub fn len(&self) -> usize {
        self.vecs.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vecs.is_empty()
    }

    /// Iterates over the vectors in order.
    pub fn iter(&self) -> impl Iterator<Item = &BoolVec> {
        self.vecs.iter()
    }

    /// `⊕` on the Boolean domain: set union (§6.2).
    pub fn union(&self, other: &BoolVecSet) -> BoolVecSet {
        BoolVecSet {
            vecs: self.vecs.union(&other.vecs).cloned().collect(),
        }
    }

    /// `⟦Not⟧♯`: element-wise negation.
    pub fn not(&self) -> BoolVecSet {
        BoolVecSet::from_vecs(self.vecs.iter().map(|v| v.negate()))
    }

    /// `⟦And⟧♯`: all pairwise conjunctions.
    pub fn and(&self, other: &BoolVecSet) -> BoolVecSet {
        BoolVecSet::from_vecs(
            self.vecs
                .iter()
                .flat_map(|a| other.vecs.iter().map(move |b| a.and(b))),
        )
    }

    /// `⟦Or⟧♯`: all pairwise disjunctions.
    pub fn or(&self, other: &BoolVecSet) -> BoolVecSet {
        BoolVecSet::from_vecs(
            self.vecs
                .iter()
                .flat_map(|a| other.vecs.iter().map(move |b| a.or(b))),
        )
    }

    /// `true` iff `self ⊆ other`.
    pub fn subset_of(&self, other: &BoolVecSet) -> bool {
        self.vecs.is_subset(&other.vecs)
    }
}

impl fmt::Debug for BoolVecSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BoolVecSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.vecs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<BoolVec> for BoolVecSet {
    fn from_iter<T: IntoIterator<Item = BoolVec>>(iter: T) -> Self {
        BoolVecSet::from_vecs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[bool]) -> BoolVec {
        BoolVec::from(bits.to_vec())
    }

    #[test]
    fn vector_operations() {
        let a = bv(&[true, false, true]);
        let b = bv(&[true, true, false]);
        assert_eq!(a.and(&b), bv(&[true, false, false]));
        assert_eq!(a.or(&b), bv(&[true, true, true]));
        assert_eq!(a.negate(), bv(&[false, true, false]));
    }

    #[test]
    fn example_6_1_not() {
        // ⟦Not⟧♯({(t,f),(t,t)}) = {(f,t),(f,f)}
        let bset = BoolVecSet::from_vecs([bv(&[true, false]), bv(&[true, true])]);
        let expected = BoolVecSet::from_vecs([bv(&[false, true]), bv(&[false, false])]);
        assert_eq!(bset.not(), expected);
    }

    #[test]
    fn example_6_4_fixed_point_step() {
        // {(t,f)} ⊕ {(t,t),(f,f)} ⊕ And(∅, ∅) = {(t,f),(t,t),(f,f)}
        let a = BoolVecSet::singleton(bv(&[true, false]));
        let b = BoolVecSet::from_vecs([bv(&[true, true]), bv(&[false, false])]);
        let and = BoolVecSet::empty().and(&BoolVecSet::empty());
        let result = a.union(&b).union(&and);
        assert_eq!(result.len(), 3);
        // the And of the result with itself adds nothing new: fixed point
        let step2 = a.union(&b).union(&result.and(&result));
        assert_eq!(step2, result);
    }

    #[test]
    fn all_enumerates_the_full_domain() {
        assert_eq!(BoolVec::all(0).len(), 1);
        assert_eq!(BoolVec::all(3).len(), 8);
        assert_eq!(BoolVecSet::top(2).len(), 4);
    }

    #[test]
    fn subset_and_union() {
        let a = BoolVecSet::singleton(bv(&[true]));
        let b = BoolVecSet::top(1);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert_eq!(a.union(&b), b);
    }
}
