//! The generator's deterministic random source: SplitMix64 seeding feeding
//! an xorshift128+ core.
//!
//! `std`-only on purpose — the generator sits on the hot path of corpus
//! production (thousands of instances per CI run) and must be byte-stable
//! across platforms and releases, so it depends on nothing but arithmetic.
//! The design follows the classic dbgen recipe: a cheap splittable seeder
//! (SplitMix64) derives independent per-instance seeds from a single base
//! seed, and each instance draws from its own xorshift128+ stream, so
//! instance `i`'s content never depends on how many draws instance `i − 1`
//! consumed (or on deduplication history).

/// One SplitMix64 step: advances the state and returns the next output.
///
/// Used both as the seed-expansion function ([`GenRng::from_seed`]) and to
/// derive independent per-instance seeds from `(base_seed, index)`.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of instance `index` from the sweep's base seed.
///
/// Mixing the index through SplitMix64 (rather than offsetting the state)
/// keeps nearby indices statistically independent even for tiny base seeds.
pub fn instance_seed(base_seed: u64, index: u64) -> u64 {
    let mut state = base_seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f);
    // Two rounds: one to mix the index in, one to decorrelate from the raw
    // base seed (so seed 0, index 0 is not the all-zero stream).
    splitmix64(&mut state);
    splitmix64(&mut state)
}

/// A deterministic xorshift128+ stream, seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct GenRng {
    s0: u64,
    s1: u64,
}

impl GenRng {
    /// Creates a stream from a 64-bit seed (SplitMix64-expanded to the
    /// 128-bit xorshift state, per the generator authors' recommendation).
    pub fn from_seed(seed: u64) -> GenRng {
        let mut state = seed;
        let s0 = splitmix64(&mut state);
        let s1 = splitmix64(&mut state);
        GenRng {
            // xorshift128+ must never reach the all-zero state; SplitMix64
            // outputs zero for at most one of the two words.
            s0: if s0 == 0 && s1 == 0 { 1 } else { s0 },
            s1,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// A uniform integer in `lo..=hi`.
    ///
    /// Uses rejection-free modulo reduction: the tiny bias (ranges here are
    /// ≪ 2⁶⁴) is irrelevant for workload generation, and the cost is one
    /// multiplication-free step per draw.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform index in `0..len` (for choosing from a slice).
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty slice");
        (self.next_u64() % len as u64) as usize
    }

    /// `true` with probability `percent / 100`.
    pub fn chance(&mut self, percent: u32) -> bool {
        debug_assert!(percent <= 100);
        (self.next_u64() % 100) < u64::from(percent)
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.index(options.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = GenRng::from_seed(42);
        let mut b = GenRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = GenRng::from_seed(43);
        let differs = (0..10).any(|_| a.next_u64() != c.next_u64());
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn instance_seeds_are_index_independent() {
        // The seed of instance i is a pure function of (base, i) — not of
        // the draws instance i−1 made.
        assert_eq!(instance_seed(7, 3), instance_seed(7, 3));
        assert_ne!(instance_seed(7, 3), instance_seed(7, 4));
        assert_ne!(instance_seed(7, 3), instance_seed(8, 3));
        // Small seeds do not collapse to a degenerate stream.
        assert_ne!(instance_seed(0, 0), 0);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_both_ends() {
        let mut rng = GenRng::from_seed(1);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "2000 draws must cover a 7-value range");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = GenRng::from_seed(2);
        let hits = (0..10_000).filter(|_| rng.chance(30)).count();
        assert!(
            (2_500..3_500).contains(&hits),
            "30% chance hit {hits}/10000 times"
        );
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = GenRng::from_seed(3);
        let options = [10, 20, 30];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&options));
        }
        assert_eq!(seen.len(), 3);
    }
}
