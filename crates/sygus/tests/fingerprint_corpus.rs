//! Collision sanity for [`sygus::Problem::fingerprint`] over the real
//! on-disk corpus: every checked-in `.sl` instance must fingerprint
//! distinctly (they are all semantically different problems), and the
//! fingerprint must be invariant under a print → parse round trip.

use std::collections::BTreeMap;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

fn corpus_problems() -> Vec<(String, sygus::Problem)> {
    let dir = corpus_dir();
    assert!(
        dir.is_dir(),
        "corpus directory missing at {}",
        dir.display()
    );
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("readable corpus directory")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sl"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus has no .sl files");
    files
        .into_iter()
        .map(|path| {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable .sl file");
            let problem =
                sygus::parser::parse_problem(&text, &name).expect("corpus instance parses");
            (name, problem)
        })
        .collect()
}

#[test]
fn corpus_fingerprints_are_pairwise_distinct() {
    let mut seen: BTreeMap<u64, String> = BTreeMap::new();
    for (name, problem) in corpus_problems() {
        if let Some(clash) = seen.insert(problem.fingerprint(), name.clone()) {
            panic!("fingerprint collision between corpus instances `{clash}` and `{name}`");
        }
    }
    assert!(seen.len() >= 18, "expected the full corpus, got {seen:?}");
}

#[test]
fn corpus_fingerprints_survive_a_print_parse_round_trip() {
    for (name, problem) in corpus_problems() {
        let printed = sygus::parser::problem_to_sygus(&problem, "f");
        let reparsed =
            sygus::parser::parse_problem(&printed, &name).expect("printed corpus instance parses");
        assert_eq!(
            problem.fingerprint(),
            reparsed.fingerprint(),
            "fingerprint of `{name}` changed across print → parse"
        );
    }
}
