//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }

    /// Uniform `i128` in `[lo, hi]`.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (wide % span) as i128
    }
}

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds a branch
    /// strategy from a strategy for the sub-values. `depth` bounds nesting;
    /// the size hints of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        strat
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among strategies with a common value type
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.usize_in(0, self.options.len() - 1);
        self.options[ix].generate(rng)
    }
}

/// Uniform `bool` (the strategy behind `any::<bool>()`).
#[derive(Clone, Copy, Debug)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.i128_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $ix:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
