//! End-to-end daemon tests over real sockets: verdict round-trips,
//! fingerprint-keyed caching, deadline timeouts, framing errors, and a
//! concurrent client burst.

use server::protocol::{read_frame, write_frame};
use server::{
    Bind, Client, Endpoint, ErrorCode, Request, Response, ResponseStatus, Server, ServerConfig,
    StatsSnapshot,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A trivially unrealizable instance: a constants-only grammar cannot
/// equal `x` everywhere. Two CEGIS examples settle it.
const UNREALIZABLE: &str = "\
(set-logic CLIA)
(synth-fun f ((x Int)) Int ((Start Int (0 1))))
(declare-var x Int)
(constraint (= (f x) x))
(check-synth)
";

/// The same instance with different whitespace and a comment: a distinct
/// byte string, but the identical canonical form and fingerprint.
const UNREALIZABLE_RESPACED: &str = "\
; same problem, different bytes
(set-logic CLIA)
(synth-fun f ((x Int)) Int
  ((Start Int (0 1))))
(declare-var x Int)
(constraint   (= (f x) x))
(check-synth)
";

/// A trivially realizable instance: `f = x` is in the grammar.
const REALIZABLE: &str = "\
(set-logic CLIA)
(synth-fun f ((x Int)) Int ((Start Int (x 0 1))))
(declare-var x Int)
(constraint (= (f x) x))
(check-synth)
";

/// The current value of an unlabelled metric in a Prometheus exposition.
fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .filter(|line| !line.starts_with('#'))
        .find(|line| line.split_whitespace().next() == Some(name))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn start(config: ServerConfig) -> (Endpoint, std::thread::JoinHandle<StatsSnapshot>) {
    let server = Server::bind(config).expect("binding a loopback listener");
    let endpoint = server.endpoint();
    let handle = std::thread::spawn(move || server.run().expect("accept loop"));
    (endpoint, handle)
}

fn shut_down(endpoint: &Endpoint, handle: std::thread::JoinHandle<StatsSnapshot>) -> StatsSnapshot {
    let mut client = Client::connect(endpoint).expect("connecting for shutdown");
    let response = client.shutdown().expect("shutdown request");
    assert_eq!(response.status, ResponseStatus::Ok);
    handle.join().expect("the accept loop exits after shutdown")
}

#[test]
fn solve_round_trips_and_second_request_hits_the_cache() {
    let (endpoint, handle) = start(ServerConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();

    let first = client.solve("r-1", UNREALIZABLE).unwrap();
    assert_eq!(first.status, ResponseStatus::Ok, "{first:?}");
    assert_eq!(first.verdict.as_deref(), Some("unrealizable"));
    assert!(!first.cached);
    let fingerprint = first
        .fingerprint
        .clone()
        .expect("solves carry fingerprints");

    let second = client.solve("r-2", UNREALIZABLE).unwrap();
    assert_eq!(second.status, ResponseStatus::Ok);
    assert_eq!(second.verdict, first.verdict);
    assert!(second.cached, "the second identical request must hit");
    assert_eq!(second.fingerprint.as_deref(), Some(fingerprint.as_str()));
    assert_eq!(second.id, "r-2", "ids echo verbatim");

    // Different bytes, same canonical form: still a hit.
    let respaced = client.solve("r-3", UNREALIZABLE_RESPACED).unwrap();
    assert!(respaced.cached, "fingerprints key the canonical form");
    assert_eq!(respaced.verdict, first.verdict);

    // A different problem is a different key.
    let other = client.solve("r-4", REALIZABLE).unwrap();
    assert_eq!(other.verdict.as_deref(), Some("realizable"));
    assert!(!other.cached);
    assert_ne!(other.fingerprint, first.fingerprint);

    let stats = shut_down(&endpoint, handle);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_entries, 2);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.errors, 0);
}

#[test]
fn no_cache_requests_bypass_lookup_and_insertion() {
    let (endpoint, handle) = start(ServerConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();
    for id in ["r-1", "r-2"] {
        let response = client
            .request(&Request::solve(id, UNREALIZABLE).with_no_cache())
            .unwrap();
        assert_eq!(response.verdict.as_deref(), Some("unrealizable"));
        assert!(!response.cached, "no_cache must never serve from the cache");
    }
    let stats = shut_down(&endpoint, handle);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_entries, 0);
}

#[test]
fn ping_and_stats_round_trip() {
    let (endpoint, handle) = start(ServerConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();
    let pong = client.ping().unwrap();
    assert_eq!(pong.status, ResponseStatus::Ok);
    assert_eq!(pong.id, "ping");
    let stats = client.stats().unwrap();
    let snapshot = stats.stats.expect("stats responses carry a snapshot");
    assert_eq!(snapshot.workers, 4, "the default pool size");
    assert_eq!(snapshot.requests, 2);
    shut_down(&endpoint, handle);
}

#[test]
fn malformed_frames_get_stable_error_codes() {
    let (endpoint, handle) = start(ServerConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();

    // A solve whose problem is not SyGuS-IF: parse-error with line:col.
    let response = client.solve("r-1", "(this is not sygus").unwrap();
    assert_eq!(response.status, ResponseStatus::Error);
    assert_eq!(response.error_code, Some(ErrorCode::ParseError));
    assert!(
        response.error.as_deref().unwrap().contains(':'),
        "{response:?}"
    );

    // Raw socket: non-JSON payload.
    if let Endpoint::Tcp(addr) = &endpoint {
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, b"not json at all").unwrap();
        let reply = read_frame(&mut raw, 1 << 20).unwrap().unwrap();
        let json = runner::Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        let response = Response::from_json(&json).unwrap();
        assert_eq!(response.error_code, Some(ErrorCode::MalformedJson));

        // Valid JSON, invalid request shape.
        write_frame(&mut raw, b"{\"op\": \"warp\"}").unwrap();
        let reply = read_frame(&mut raw, 1 << 20).unwrap().unwrap();
        let json = runner::Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        let response = Response::from_json(&json).unwrap();
        assert_eq!(response.error_code, Some(ErrorCode::MalformedRequest));
    } else {
        panic!("the default config binds TCP");
    }
    shut_down(&endpoint, handle);
}

#[test]
fn oversized_frames_are_answered_then_the_connection_closes() {
    let config = ServerConfig {
        max_frame_bytes: 256,
        ..ServerConfig::default()
    };
    let (endpoint, handle) = start(config);
    let Endpoint::Tcp(addr) = &endpoint else {
        panic!("the default config binds TCP")
    };
    let mut raw = TcpStream::connect(addr).unwrap();
    // Declare a 1 KiB payload against the 256-byte ceiling. The daemon
    // answers from the header alone — the payload is never read.
    raw.write_all(&1024u32.to_be_bytes()).unwrap();
    let reply = read_frame(&mut raw, 1 << 20).unwrap().unwrap();
    let json = runner::Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    let response = Response::from_json(&json).unwrap();
    assert_eq!(response.error_code, Some(ErrorCode::FrameTooLarge));
    // The stream is out of sync, so the daemon closes it.
    assert_eq!(read_frame(&mut raw, 1 << 20).unwrap(), None);
    shut_down(&endpoint, handle);
}

#[test]
fn a_tiny_deadline_on_a_slow_instance_returns_timeout_not_a_hang() {
    // mpg_ite1 takes nay hundreds of CEGIS milliseconds in release and far
    // more here; a 1 ms deadline must cancel both engines instead.
    let slow = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../corpus/mpg_ite1.sl"
    ))
    .expect("the corpus ships mpg_ite1.sl");
    let (endpoint, handle) = start(ServerConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();
    let mut request = Request::solve("r-slow", &slow)
        .with_deadline_ms(1)
        .with_no_cache();
    // Force the full race: a hypothetical presolve win would settle the
    // instance before any engine job could observe the deadline.
    request.no_presolve = true;
    let started = Instant::now();
    let response = client.request(&request).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(response.status, ResponseStatus::Timeout, "{response:?}");
    assert_eq!(response.verdict.as_deref(), Some("unknown"));
    // "promptly" means within one engine loop iteration, not a full run.
    assert!(elapsed < Duration::from_secs(60), "took {elapsed:?}");

    // The daemon survives the timeout: it still serves fresh verdicts, and
    // the timed-out unknown was never cached.
    let next = client.solve("r-after", UNREALIZABLE).unwrap();
    assert_eq!(next.verdict.as_deref(), Some("unrealizable"));
    let stats = shut_down(&endpoint, handle);
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.cache_entries, 1, "only the fresh verdict is cached");
    // Exactly one registration genuinely expired: the timed-out solve.
    // The follow-up solve finished early and retired its guard.
    assert_eq!(stats.deadline_trips, 1, "{stats:?}");
}

#[test]
fn a_concurrent_client_burst_never_deadlocks() {
    // 8 clients × 2 solves on a 2-worker pool with presolve off: every
    // race queues both engine jobs behind the others'. The race drivers
    // run on connection threads, never on the pool, so FIFO draining
    // finishes every job — this must complete, not deadlock.
    let config = ServerConfig {
        slots: 2,
        presolve: false,
        ..ServerConfig::default()
    };
    let (endpoint, handle) = start(config);
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).expect("burst connect");
                let verdicts: Vec<_> = [UNREALIZABLE, REALIZABLE]
                    .iter()
                    .enumerate()
                    .map(|(j, problem)| {
                        let id = format!("c{i}-r{j}");
                        let response = client.solve(&id, problem).expect("burst solve");
                        assert_eq!(response.status, ResponseStatus::Ok, "{response:?}");
                        response.verdict.expect("burst solves settle")
                    })
                    .collect();
                verdicts
            })
        })
        .collect();
    for client in clients {
        let verdicts = client.join().expect("burst client thread");
        assert_eq!(verdicts, vec!["unrealizable", "realizable"]);
    }
    // The registry must agree with the drained pool: every gauge back to
    // zero, every solve counted, queue waits recorded for each engine job.
    let mut prober = Client::connect(&endpoint).unwrap();
    let body = prober
        .metrics()
        .unwrap()
        .metrics
        .expect("metrics responses carry the exposition");
    assert_eq!(metric_value(&body, "solver_pool_in_flight"), Some(0.0));
    assert_eq!(metric_value(&body, "solver_pool_queue_depth"), Some(0.0));
    assert_eq!(metric_value(&body, "solver_inflight_requests"), Some(0.0));
    assert_eq!(metric_value(&body, "solver_pool_workers"), Some(2.0));
    let requests = metric_value(&body, "solver_requests_total").unwrap();
    assert!(requests >= 16.0, "16 solves dispatched, saw {requests}");
    let waits = metric_value(&body, "solver_queue_wait_seconds_count").unwrap();
    assert!(waits >= 2.0, "both engines queue per race, saw {waits}");
    let stats = shut_down(&endpoint, handle);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.in_flight, 0, "the pool drains completely");
    assert_eq!(stats.queue_depth, 0);
    // Concurrent solves of the same problem may stampede past the first
    // insert (each then races and re-inserts harmlessly), so the exact
    // hit count is scheduling-dependent — but only 2 entries ever exist.
    assert_eq!(stats.cache_entries, 2, "{stats:?}");
    assert_eq!(stats.cache_hits + stats.cache_misses, 16, "{stats:?}");
}

#[test]
fn shutdown_rejects_new_work_while_draining() {
    let (endpoint, handle) = start(ServerConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();
    client.shutdown().unwrap();
    // The same connection stays open; new solves are refused politely.
    let response = client.solve("late", UNREALIZABLE).unwrap();
    assert_eq!(response.status, ResponseStatus::Error);
    assert_eq!(response.error_code, Some(ErrorCode::ShuttingDown));
    handle.join().expect("the accept loop exits");
}

#[test]
fn traced_solves_return_span_trees_and_every_response_has_a_trace_id() {
    let (endpoint, handle) = start(ServerConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();

    let plain = client.solve("t-0", UNREALIZABLE).unwrap();
    assert!(
        plain.trace_id.is_some(),
        "every response carries a trace id"
    );
    assert!(plain.trace.is_none(), "traces only appear when asked for");

    let mut request = Request::solve("t-1", UNREALIZABLE)
        .with_trace()
        .with_no_cache();
    request.no_presolve = true;
    let traced = client.request(&request).unwrap();
    assert_eq!(traced.status, ResponseStatus::Ok, "{traced:?}");
    let trace = traced.trace.expect("trace: true returns the span tree");
    assert_eq!(
        Some(trace.trace_id.as_str()),
        traced.trace_id.as_deref(),
        "the span tree and the response carry the same id"
    );
    let structure = trace.structure();
    assert_eq!(structure[0], (0, "solve".to_string()));
    assert_eq!(structure[1], (1, "parse".to_string()));
    assert!(
        structure.iter().any(|(_, phase)| phase == "race"),
        "a full race leaves a race span: {structure:?}"
    );
    assert!(
        structure.contains(&(3, "queue".to_string()))
            && structure.contains(&(3, "run".to_string())),
        "engine spans nest queue and run: {structure:?}"
    );

    // A cache hit never reaches presolve or the race: its trace is the
    // minimal parse + lookup shape.
    client.solve("t-2", UNREALIZABLE).unwrap();
    let hit = client
        .request(&Request::solve("t-3", UNREALIZABLE).with_trace())
        .unwrap();
    assert!(hit.cached, "{hit:?}");
    let hit_trace = hit.trace.expect("hits are traced too");
    assert_eq!(
        hit_trace.structure(),
        vec![
            (0, "solve".to_string()),
            (1, "parse".to_string()),
            (1, "cache".to_string()),
        ]
    );
    shut_down(&endpoint, handle);
}

#[test]
fn the_scrape_listener_serves_every_documented_family() {
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("binding with a scrape listener");
    let endpoint = server.endpoint();
    let scrape = server.metrics_endpoint().expect("the scrape socket bound");
    let handle = std::thread::spawn(move || server.run().expect("accept loop"));

    // Traffic first, so counters and histograms carry real values.
    let mut client = Client::connect(&endpoint).unwrap();
    client.solve("m-1", UNREALIZABLE).unwrap();
    client.solve("m-2", UNREALIZABLE).unwrap();

    let mut raw = TcpStream::connect(scrape).expect("connecting to the scrape port");
    raw.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    use std::io::Read as _;
    raw.read_to_string(&mut reply).expect("one full response");
    assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
    assert!(
        reply.contains("Content-Type: text/plain; version=0.0.4"),
        "{reply}"
    );
    let body = reply
        .split_once("\r\n\r\n")
        .expect("headers end with a blank line")
        .1;
    for name in obs::names::ALL {
        assert!(
            body.contains(&format!("# TYPE {name} ")),
            "family {name} missing from the scrape:\n{body}"
        );
    }
    assert_eq!(metric_value(body, "solver_requests_total"), Some(2.0));
    assert_eq!(metric_value(body, "solver_cache_hits_total"), Some(1.0));
    assert_eq!(metric_value(body, "solver_cache_misses_total"), Some(1.0));
    assert_eq!(metric_value(body, "solver_cache_entries"), Some(1.0));
    assert_eq!(metric_value(body, "solver_pool_workers"), Some(4.0));
    let observed = metric_value(body, "solver_request_seconds_count").unwrap();
    assert_eq!(observed, 2.0, "both solves land in the request histogram");
    shut_down(&endpoint, handle);
}

#[cfg(unix)]
#[test]
fn unix_sockets_serve_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("daemon.sock");
    let config = ServerConfig {
        bind: Bind::Unix(path.clone()),
        ..ServerConfig::default()
    };
    let (endpoint, handle) = start(config);
    let mut client = Client::connect(&endpoint).unwrap();
    let response = client.solve("u-1", UNREALIZABLE).unwrap();
    assert_eq!(response.verdict.as_deref(), Some("unrealizable"));
    shut_down(&endpoint, handle);
    assert!(!path.exists(), "the socket file is removed on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
