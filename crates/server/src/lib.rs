//! Solver-as-a-service: a warm-engine daemon for the unrealizability
//! portfolio.
//!
//! The batch pipeline (`reproduce solve`) pays engine start-up cost per
//! instance and forgets every verdict it computes. This crate keeps the
//! engines *warm* and the verdicts *memoized*:
//!
//! * [`Server`] accepts SyGuS-IF problems over a length-prefixed
//!   TCP/Unix-socket protocol ([`protocol`]) and dispatches them onto a
//!   persistent [`runner::WarmPool`] through
//!   [`portfolio::Portfolio::race_on_pool`] — presolve stage included.
//! * Definitive verdicts are memoized in a bounded LRU [`VerdictCache`]
//!   keyed by [`sygus::Problem::fingerprint`]; a lookup only hits when
//!   the stored canonical form is byte-identical, so a 64-bit hash
//!   collision can never serve the wrong verdict.
//! * Every request runs under a deadline wired to a [`runner::Cancel`]
//!   token: expiry cancels both engines cooperatively and the client
//!   receives a `timeout` response — the connection never hangs.
//!
//! The protocol is documented normatively in `docs/PROTOCOL.md`; the
//! serving architecture in `docs/ARCHITECTURE.md`. `reproduce serve`
//! runs the daemon and `reproduce bench-serve` replays corpus and
//! generated streams against it.
//!
//! Everything is `std`-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod protocol;

pub use cache::{CacheStats, CachedVerdict, VerdictCache};
pub use client::{Client, ClientError};
pub use daemon::{Bind, Endpoint, Server, ServerConfig};
pub use protocol::{
    trace_from_json, trace_to_json, ErrorCode, Op, Request, Response, ResponseStatus,
    StatsSnapshot, PROTOCOL_VERSION,
};
