//! The family catalogue: which kinds of SyGuS problems the generator
//! emits, and the knobs that scale them.
//!
//! Every family is *verdict-transparent*: the builder knows, by
//! construction, whether each emitted instance is realizable or
//! unrealizable (see [`Expectation`]), which turns every generated
//! instance into a free soundness test for the solving engines — an
//! engine reporting the forbidden verdict is a bug, full stop.

use std::fmt;

/// Which verdict class an instance belongs to, known by construction.
///
/// The expectation is a *soundness bound*, not a completeness demand: an
/// engine may always answer `unknown`, but it must never report the
/// verdict the construction rules out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// A witness term exists (the builder produces one); no engine may
    /// report `unrealizable`.
    Realizable,
    /// No solution exists (a finite argument rules every term out); no
    /// engine may report `realizable`.
    Unrealizable,
}

impl Expectation {
    /// Stable lower-case name (`realizable` / `unrealizable`), used in the
    /// generated `.sl` header comments and the oracle's failure reports.
    pub fn name(&self) -> &'static str {
        match self {
            Expectation::Realizable => "realizable",
            Expectation::Unrealizable => "unrealizable",
        }
    }
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parameterized problem family.
///
/// Each variant scales along different knobs of [`Scale`]; the per-family
/// construction (and the by-construction verdict argument) lives in
/// [`crate::builder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// `Start ::= S₁ + Start | 0`, `Sᵢ ::= Sᵢ₊₁ + Sᵢ₊₁`, `S_d ::= x` — the
    /// §2 chain shape. The grammar generates exactly `{m·2^(d−1)·x : m ≥ 0}`;
    /// the spec asks for `c·x + r`. Scales with grammar **depth** `d`.
    PlusMod,
    /// `Start ::= c | Start + Start` (no variables): sums `{m·c : m ≥ 1}`
    /// against a constant target. Scales with **constant magnitude**.
    ConstSum,
    /// Piecewise-constant CLIA: constants under `ite` with `x < g` guards,
    /// point-wise spec `x = aⱼ ⇒ f = vⱼ`. Scales with **guard nesting**
    /// and **point count**.
    GuardedConst,
    /// Programming-by-example over `Start ::= x | 0 [| 1] | Start + Start`:
    /// point constraints from a hidden affine target (or a deliberately
    /// inconsistent perturbation). Scales with **example count**.
    PbePoints,
    /// The max-with-offset CLIA shape: `f = max(x, y) + g` over a grammar
    /// whose only constant is `0` — realizable exactly when `g = 0`.
    /// Scales with **guard nesting**.
    MaxGap,
}

impl Family {
    /// Every family, in catalogue order (the round-robin order of the
    /// stream).
    pub const ALL: [Family; 5] = [
        Family::PlusMod,
        Family::ConstSum,
        Family::GuardedConst,
        Family::PbePoints,
        Family::MaxGap,
    ];

    /// Stable snake_case name, used in instance names, report families,
    /// and the `--families` CLI flag.
    pub fn name(&self) -> &'static str {
        match self {
            Family::PlusMod => "plus_mod",
            Family::ConstSum => "const_sum",
            Family::GuardedConst => "guarded_const",
            Family::PbePoints => "pbe_points",
            Family::MaxGap => "max_gap",
        }
    }

    /// Inverse of [`Family::name`].
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }

    /// One-line description for the CLI family catalogue.
    pub fn description(&self) -> &'static str {
        match self {
            Family::PlusMod => "multiples-of-2^(d-1)·x chain grammar vs an affine target",
            Family::ConstSum => "constant-sum grammar {m·c} vs a constant target",
            Family::GuardedConst => "piecewise-constant ite grammar vs point constraints",
            Family::PbePoints => "affine PBE: point constraints from a hidden (or broken) target",
            Family::MaxGap => "max(x,y)+g over a constant-free CLIA grammar",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The scaling knobs, applied per instance: each instance draws its own
/// depth/magnitude/point-count/nesting uniformly up to these caps, and is
/// realizable with probability `realizable_percent`.
///
/// The defaults keep instances small enough that the exact engine's
/// enumerator can *find* the realizable witnesses (term size ≤ its default
/// search budget), so a fuzz sweep exercises both verdict paths.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Maximal chain depth `d` of [`Family::PlusMod`] grammars (≥ 1).
    pub max_depth: usize,
    /// Maximal absolute value of generated constants (≥ 1).
    pub max_magnitude: i64,
    /// Maximal number of spec points for the point-wise families (≥ 2).
    pub max_points: usize,
    /// Maximal guard-nesting tier: 1 = plain `x < g` / `a < b` guards,
    /// 2 = adds `and`/`not` guard productions.
    pub max_nesting: usize,
    /// Probability (percent) that an instance is realizable by
    /// construction.
    pub realizable_percent: u32,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            max_depth: 3,
            max_magnitude: 9,
            max_points: 3,
            max_nesting: 2,
            realizable_percent: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.name()), Some(family));
            assert!(!family.description().is_empty());
        }
        assert_eq!(Family::parse("nope_family"), None);
    }

    #[test]
    fn catalogue_has_no_duplicate_names() {
        let names: std::collections::BTreeSet<_> = Family::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn expectation_names_are_stable() {
        assert_eq!(Expectation::Realizable.name(), "realizable");
        assert_eq!(Expectation::Unrealizable.name(), "unrealizable");
    }
}
