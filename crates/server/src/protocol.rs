//! The wire protocol: length-prefixed JSON frames, request/response
//! shapes, and the stable error-code catalogue.
//!
//! The format is documented normatively in `docs/PROTOCOL.md`; this module
//! is the single implementation both the daemon and the client use, so the
//! two can never drift apart. In short:
//!
//! * a **frame** is a 4-byte big-endian payload length followed by that
//!   many bytes of UTF-8 JSON (one object per frame);
//! * a **request** names an [`Op`] plus its arguments; a **response**
//!   echoes the request `id` and carries a [`ResponseStatus`], the
//!   verdict fields, and — on errors — a stable kebab-case [`ErrorCode`];
//! * [`PROTOCOL_VERSION`] is stamped into every response and bumps on any
//!   breaking change, in the same spirit as
//!   [`runner::report::SCHEMA_VERSION`] for on-disk reports.

use runner::Json;
use std::io::{self, Read, Write};

/// Version of the wire format; bump on any breaking change.
pub const PROTOCOL_VERSION: u64 = 1;

/// The default ceiling on one frame's payload size (1 MiB): far above any
/// sane SyGuS-IF problem, small enough that a corrupt length prefix
/// cannot make the daemon allocate gigabytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// What a request asks the daemon to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Solve a SyGuS-IF problem (the `problem` field carries its text).
    Solve,
    /// Liveness probe; the response carries no verdict.
    Ping,
    /// Return the daemon's counters as a [`StatsSnapshot`].
    Stats,
    /// Return the daemon's full metrics registry rendered in Prometheus
    /// text exposition format (the same text the scrape listener serves).
    Metrics,
    /// Stop accepting connections and shut the daemon down.
    Shutdown,
}

impl Op {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Op::Solve => "solve",
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        }
    }

    /// Inverse of [`Op::as_str`].
    pub fn parse(s: &str) -> Option<Op> {
        match s {
            "solve" => Some(Op::Solve),
            "ping" => Some(Op::Ping),
            "stats" => Some(Op::Stats),
            "metrics" => Some(Op::Metrics),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }
}

/// The stable error-code catalogue (kebab-case, like crate `analyze`'s
/// diagnostic codes). Codes are part of the wire contract: clients may
/// dispatch on them, so existing codes never change meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame's declared payload length exceeds the daemon's ceiling.
    /// The daemon closes the connection after this error (the payload was
    /// never read, so the stream cannot be resynchronized).
    FrameTooLarge,
    /// The payload is not valid JSON.
    MalformedJson,
    /// The payload is JSON but not a valid request (unknown `op`, missing
    /// or ill-typed field).
    MalformedRequest,
    /// The `problem` text is not a parseable SyGuS-IF document; the
    /// message carries the `line:col` parse diagnostic.
    ParseError,
    /// Admission control shed the request: the engine pool's in-flight
    /// load was at its bound. Retry later.
    Overloaded,
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown,
    /// An engine job crashed or another invariant broke inside the
    /// daemon. The request may or may not be retryable.
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::MalformedJson => "malformed-json",
            ErrorCode::MalformedRequest => "malformed-request",
            ErrorCode::ParseError => "parse-error",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorCode::as_str`].
    pub fn parse(s: &str) -> Option<ErrorCode> {
        match s {
            "frame-too-large" => Some(ErrorCode::FrameTooLarge),
            "malformed-json" => Some(ErrorCode::MalformedJson),
            "malformed-request" => Some(ErrorCode::MalformedRequest),
            "parse-error" => Some(ErrorCode::ParseError),
            "overloaded" => Some(ErrorCode::Overloaded),
            "shutting-down" => Some(ErrorCode::ShuttingDown),
            "internal" => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseStatus {
    /// The request was served; the verdict fields are meaningful.
    Ok,
    /// The request's deadline expired before the engines settled the
    /// problem; both engines were cancelled and the verdict is `unknown`.
    Timeout,
    /// The request failed; `error_code` and `error` say why.
    Error,
}

impl ResponseStatus {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResponseStatus::Ok => "ok",
            ResponseStatus::Timeout => "timeout",
            ResponseStatus::Error => "error",
        }
    }

    /// Inverse of [`ResponseStatus::as_str`].
    pub fn parse(s: &str) -> Option<ResponseStatus> {
        match s {
            "ok" => Some(ResponseStatus::Ok),
            "timeout" => Some(ResponseStatus::Timeout),
            "error" => Some(ResponseStatus::Error),
            _ => None,
        }
    }
}

/// One request frame's decoded content.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// Client-chosen correlation id, echoed verbatim into the response.
    pub id: String,
    /// The SyGuS-IF problem text (required for [`Op::Solve`]).
    pub problem: Option<String>,
    /// Per-request deadline in milliseconds, counted from admission; the
    /// daemon's default applies when absent.
    pub deadline_ms: Option<u64>,
    /// Skip the verdict cache entirely (neither look up nor store).
    pub no_cache: bool,
    /// Disable the race's static presolve stage for this request.
    pub no_presolve: bool,
    /// Return the solve's span tree in the response's `trace` field.
    pub trace: bool,
}

impl Request {
    /// A solve request with the daemon's default deadline.
    pub fn solve(id: impl Into<String>, problem: impl Into<String>) -> Request {
        Request {
            op: Op::Solve,
            id: id.into(),
            problem: Some(problem.into()),
            deadline_ms: None,
            no_cache: false,
            no_presolve: false,
            trace: false,
        }
    }

    /// An argument-less request (`ping`, `stats`, `shutdown`).
    pub fn plain(op: Op, id: impl Into<String>) -> Request {
        Request {
            op,
            id: id.into(),
            problem: None,
            deadline_ms: None,
            no_cache: false,
            no_presolve: false,
            trace: false,
        }
    }

    /// Overrides the deadline.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Request {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Bypasses the verdict cache.
    pub fn with_no_cache(mut self) -> Request {
        self.no_cache = true;
        self
    }

    /// Requests the solve's span tree in the response.
    pub fn with_trace(mut self) -> Request {
        self.trace = true;
        self
    }

    /// Serializes to the wire JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("op".into(), Json::Str(self.op.as_str().into())),
            ("id".into(), Json::Str(self.id.clone())),
        ];
        if let Some(problem) = &self.problem {
            fields.push(("problem".into(), Json::Str(problem.clone())));
        }
        if let Some(deadline) = self.deadline_ms {
            fields.push(("deadline_ms".into(), Json::Num(deadline as f64)));
        }
        if self.no_cache {
            fields.push(("no_cache".into(), Json::Bool(true)));
        }
        if self.no_presolve {
            fields.push(("no_presolve".into(), Json::Bool(true)));
        }
        if self.trace {
            fields.push(("trace".into(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }

    /// Decodes a request object.
    ///
    /// # Errors
    /// Returns a human-readable message on an unknown op or an ill-typed
    /// field (the daemon maps it to [`ErrorCode::MalformedRequest`]).
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let op_name = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request is missing the string field `op`")?;
        let op = Op::parse(op_name).ok_or_else(|| format!("unknown op `{op_name}`"))?;
        let id = value
            .get("id")
            .map(|v| v.as_str().ok_or("`id` is not a string"))
            .transpose()?
            .unwrap_or("")
            .to_string();
        let problem = value
            .get("problem")
            .map(|v| v.as_str().ok_or("`problem` is not a string"))
            .transpose()?
            .map(str::to_string);
        let deadline_ms = value
            .get("deadline_ms")
            .map(|v| v.as_u64().ok_or("`deadline_ms` is not an integer"))
            .transpose()?;
        let no_cache = value
            .get("no_cache")
            .map(|v| v.as_bool().ok_or("`no_cache` is not a boolean"))
            .transpose()?
            .unwrap_or(false);
        let no_presolve = value
            .get("no_presolve")
            .map(|v| v.as_bool().ok_or("`no_presolve` is not a boolean"))
            .transpose()?
            .unwrap_or(false);
        let trace = value
            .get("trace")
            .map(|v| v.as_bool().ok_or("`trace` is not a boolean"))
            .transpose()?
            .unwrap_or(false);
        if op == Op::Solve && problem.is_none() {
            return Err("solve requests need a `problem` field".into());
        }
        Ok(Request {
            op,
            id,
            problem,
            deadline_ms,
            no_cache,
            no_presolve,
            trace,
        })
    }
}

/// The daemon's counters, as carried by a `stats` response.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Total requests decoded (all ops).
    pub requests: u64,
    /// Solve requests answered from the verdict cache.
    pub cache_hits: u64,
    /// Solve requests that missed the cache (raced the engines).
    pub cache_misses: u64,
    /// Cache lookups whose fingerprint matched but whose canonical form
    /// did not — genuine 64-bit collisions, served as misses.
    pub cache_collisions: u64,
    /// LRU evictions from the verdict cache since startup.
    pub cache_evictions: u64,
    /// Insertions into the verdict cache since startup.
    pub cache_insertions: u64,
    /// Entries currently live in the cache.
    pub cache_entries: u64,
    /// Solve requests that hit their deadline.
    pub timeouts: u64,
    /// Deadline-timer trips since startup (tokens cancelled at expiry).
    pub deadline_trips: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Solve requests shed by admission control (`overloaded`).
    pub shed: u64,
    /// Engine jobs admitted but not yet finished, at snapshot time.
    pub in_flight: u64,
    /// Engine jobs queued and not yet started, at snapshot time.
    pub queue_depth: u64,
    /// Warm engine workers.
    pub workers: u64,
    /// Median engine-job queue wait in milliseconds (log₂ bucket upper
    /// edge) across every job since startup.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile engine-job queue wait in milliseconds.
    pub queue_wait_p99_ms: f64,
}

impl StatsSnapshot {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("requests".into(), Json::Num(self.requests as f64)),
            ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
            ("cache_misses".into(), Json::Num(self.cache_misses as f64)),
            (
                "cache_collisions".into(),
                Json::Num(self.cache_collisions as f64),
            ),
            (
                "cache_evictions".into(),
                Json::Num(self.cache_evictions as f64),
            ),
            (
                "cache_insertions".into(),
                Json::Num(self.cache_insertions as f64),
            ),
            ("cache_entries".into(), Json::Num(self.cache_entries as f64)),
            ("timeouts".into(), Json::Num(self.timeouts as f64)),
            (
                "deadline_trips".into(),
                Json::Num(self.deadline_trips as f64),
            ),
            ("errors".into(), Json::Num(self.errors as f64)),
            ("shed".into(), Json::Num(self.shed as f64)),
            ("in_flight".into(), Json::Num(self.in_flight as f64)),
            ("queue_depth".into(), Json::Num(self.queue_depth as f64)),
            ("workers".into(), Json::Num(self.workers as f64)),
            (
                "queue_wait_p50_ms".into(),
                Json::Num(self.queue_wait_p50_ms),
            ),
            (
                "queue_wait_p99_ms".into(),
                Json::Num(self.queue_wait_p99_ms),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<StatsSnapshot, String> {
        let num = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats field `{key}` is missing or not an integer"))
        };
        // Fields added after protocol v1's first release decode leniently
        // (default 0) so a newer client can read an older daemon's stats.
        let added = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        let added_f64 = |key: &str| value.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        Ok(StatsSnapshot {
            requests: num("requests")?,
            cache_hits: num("cache_hits")?,
            cache_misses: num("cache_misses")?,
            cache_collisions: num("cache_collisions")?,
            cache_evictions: added("cache_evictions"),
            cache_insertions: added("cache_insertions"),
            cache_entries: num("cache_entries")?,
            timeouts: num("timeouts")?,
            deadline_trips: added("deadline_trips"),
            errors: num("errors")?,
            shed: num("shed")?,
            in_flight: num("in_flight")?,
            queue_depth: added("queue_depth"),
            workers: num("workers")?,
            queue_wait_p50_ms: added_f64("queue_wait_p50_ms"),
            queue_wait_p99_ms: added_f64("queue_wait_p99_ms"),
        })
    }
}

/// Serializes a solve trace for the wire: the trace id plus a flat span
/// list (`phase`, `depth`, `start_us`, `dur_us`, optional `detail`).
pub fn trace_to_json(trace: &obs::Trace) -> Json {
    let spans = trace
        .spans
        .iter()
        .map(|span| {
            let mut fields = vec![
                ("phase".into(), Json::Str(span.phase.clone())),
                ("depth".into(), Json::Num(span.depth as f64)),
                ("start_us".into(), Json::Num(span.start_us as f64)),
                ("dur_us".into(), Json::Num(span.dur_us as f64)),
            ];
            if !span.detail.is_empty() {
                fields.push(("detail".into(), Json::Str(span.detail.clone())));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(trace.trace_id.clone())),
        ("spans".into(), Json::Arr(spans)),
    ])
}

/// Inverse of [`trace_to_json`].
///
/// # Errors
/// Returns a human-readable message on missing or ill-typed fields.
pub fn trace_from_json(value: &Json) -> Result<obs::Trace, String> {
    let trace_id = value
        .get("trace_id")
        .and_then(Json::as_str)
        .ok_or("trace is missing the string field `trace_id`")?;
    let spans = value
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("trace is missing the array field `spans`")?;
    let mut trace = obs::Trace::new(trace_id);
    for span in spans {
        let phase = span
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("span is missing the string field `phase`")?;
        let num = |key: &str| {
            span.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("span field `{key}` is missing or not an integer"))
        };
        let detail = span
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or_default();
        trace.push(
            phase,
            num("depth")? as usize,
            num("start_us")?,
            num("dur_us")?,
            detail,
        );
    }
    Ok(trace)
}

/// One response frame's decoded content.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed verbatim.
    pub id: String,
    /// How the request ended.
    pub status: ResponseStatus,
    /// The race verdict (`unrealizable`, `realizable`, `unknown`); absent
    /// on non-solve ops and on errors.
    pub verdict: Option<String>,
    /// Who produced the verdict originally: `presolve`, `nay`, or `nope`.
    /// Preserved on cache hits (`cached` says whether this request hit).
    pub winner: Option<String>,
    /// `true` when the verdict was served from the cache.
    pub cached: bool,
    /// The problem's fingerprint as 16 lowercase hex digits (solve only).
    pub fingerprint: Option<String>,
    /// Server-side service time of this request in milliseconds (queueing
    /// and solving; a cache hit is typically well under a millisecond).
    pub millis: f64,
    /// Stable error code, present iff `status` is `error`.
    pub error_code: Option<ErrorCode>,
    /// Human-readable error detail, present iff `status` is `error`.
    pub error: Option<String>,
    /// Daemon counters, present on `stats` responses.
    pub stats: Option<StatsSnapshot>,
    /// The request's trace id; stamped on every daemon response so any
    /// answer can be correlated with server-side logs and traces.
    pub trace_id: Option<String>,
    /// The solve's span tree, present when the request set `trace: true`.
    pub trace: Option<obs::Trace>,
    /// The Prometheus-format metrics text, present on `metrics`
    /// responses.
    pub metrics: Option<String>,
}

impl Response {
    /// A minimal `ok` response echoing `id`.
    pub fn ok(id: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            status: ResponseStatus::Ok,
            verdict: None,
            winner: None,
            cached: false,
            fingerprint: None,
            millis: 0.0,
            error_code: None,
            error: None,
            stats: None,
            trace_id: None,
            trace: None,
            metrics: None,
        }
    }

    /// An error response with a stable code and a human-readable detail.
    pub fn error(id: impl Into<String>, code: ErrorCode, detail: impl Into<String>) -> Response {
        Response {
            status: ResponseStatus::Error,
            error_code: Some(code),
            error: Some(detail.into()),
            ..Response::ok(id)
        }
    }

    /// Serializes to the wire JSON object. Optional fields are omitted
    /// when absent, so responses stay small and additive fields can be
    /// introduced without breaking old clients.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "protocol_version".into(),
                Json::Num(PROTOCOL_VERSION as f64),
            ),
            ("id".into(), Json::Str(self.id.clone())),
            ("status".into(), Json::Str(self.status.as_str().into())),
        ];
        if let Some(verdict) = &self.verdict {
            fields.push(("verdict".into(), Json::Str(verdict.clone())));
        }
        if let Some(winner) = &self.winner {
            fields.push(("winner".into(), Json::Str(winner.clone())));
        }
        fields.push(("cached".into(), Json::Bool(self.cached)));
        if let Some(fingerprint) = &self.fingerprint {
            fields.push(("fingerprint".into(), Json::Str(fingerprint.clone())));
        }
        fields.push(("millis".into(), Json::Num(self.millis)));
        if let Some(code) = self.error_code {
            fields.push(("error_code".into(), Json::Str(code.as_str().into())));
        }
        if let Some(error) = &self.error {
            fields.push(("error".into(), Json::Str(error.clone())));
        }
        if let Some(stats) = self.stats {
            fields.push(("stats".into(), stats.to_json()));
        }
        if let Some(trace_id) = &self.trace_id {
            fields.push(("trace_id".into(), Json::Str(trace_id.clone())));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace".into(), trace_to_json(trace)));
        }
        if let Some(metrics) = &self.metrics {
            fields.push(("metrics".into(), Json::Str(metrics.clone())));
        }
        Json::Obj(fields)
    }

    /// Decodes a response object.
    ///
    /// # Errors
    /// Returns a human-readable message on missing or ill-typed fields.
    pub fn from_json(value: &Json) -> Result<Response, String> {
        let status_name = value
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response is missing the string field `status`")?;
        let status = ResponseStatus::parse(status_name)
            .ok_or_else(|| format!("unknown status `{status_name}`"))?;
        let opt_str = |key: &str| {
            value
                .get(key)
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or(format!("`{key}` is not a string"))
                })
                .transpose()
        };
        let error_code = match opt_str("error_code")? {
            None => None,
            Some(name) => Some(
                ErrorCode::parse(&name).ok_or_else(|| format!("unknown error code `{name}`"))?,
            ),
        };
        Ok(Response {
            id: opt_str("id")?.unwrap_or_default(),
            status,
            verdict: opt_str("verdict")?,
            winner: opt_str("winner")?,
            cached: value
                .get("cached")
                .map(|v| v.as_bool().ok_or("`cached` is not a boolean"))
                .transpose()?
                .unwrap_or(false),
            fingerprint: opt_str("fingerprint")?,
            millis: value
                .get("millis")
                .map(|v| v.as_f64().ok_or("`millis` is not a number"))
                .transpose()?
                .unwrap_or(0.0),
            error_code,
            error: opt_str("error")?,
            stats: value
                .get("stats")
                .map(StatsSnapshot::from_json)
                .transpose()?,
            trace_id: opt_str("trace_id")?,
            trace: value.get("trace").map(trace_from_json).transpose()?,
            metrics: opt_str("metrics")?,
        })
    }
}

/// Renders a fingerprint as the wire's 16-lowercase-hex-digit form.
pub fn fingerprint_hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The declared payload length exceeds the ceiling; carries the
    /// declared length. The stream is no longer in sync — close it.
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge(len) => write!(f, "frame of {len} bytes exceeds the ceiling"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: big-endian `u32` length, then the payload.
///
/// # Errors
/// Propagates stream write errors.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32::MAX",
        )
    })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one frame; `Ok(None)` on clean end-of-stream (the peer closed
/// between frames).
///
/// # Errors
/// [`FrameError::TooLarge`] when the declared length exceeds `max_bytes`
/// (the payload is *not* consumed — close the stream), [`FrameError::Io`]
/// on stream errors, including an EOF in the middle of a frame
/// (`UnexpectedEof`).
pub fn read_frame(stream: &mut impl Read, max_bytes: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    // A clean EOF before any header byte means the peer is done.
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "end of stream inside a frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_bytes {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut reader: &[u8] = &wire;
        assert_eq!(
            read_frame(&mut reader, 64).unwrap(),
            Some(b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut reader, 64).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut reader, 64).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected_without_reading_the_payload() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let mut reader: &[u8] = &wire;
        match read_frame(&mut reader, 10) {
            Err(FrameError::TooLarge(100)) => {}
            other => panic!("expected TooLarge(100), got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let wire = [0, 0, 0, 9, b'x'];
        let mut reader: &[u8] = &wire;
        match read_frame(&mut reader, 64) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            Request::solve("r-1", "(set-logic LIA)").with_deadline_ms(250),
            Request::solve("r-2", "(set-logic LIA)").with_no_cache(),
            Request::solve("r-3", "(set-logic LIA)").with_trace(),
            Request::plain(Op::Ping, "p-1"),
            Request::plain(Op::Stats, "s-1"),
            Request::plain(Op::Metrics, "m-1"),
            Request::plain(Op::Shutdown, ""),
        ];
        for request in requests {
            let json = request.to_json();
            let text = json.to_string_pretty();
            let reparsed = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(reparsed, request);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let mut verdict = Response::ok("r-1");
        verdict.verdict = Some("unrealizable".into());
        verdict.winner = Some("presolve".into());
        verdict.cached = true;
        verdict.fingerprint = Some(fingerprint_hex(0xdead_beef));
        verdict.millis = 1.5;
        let mut stats = Response::ok("s-1");
        stats.stats = Some(StatsSnapshot {
            requests: 10,
            cache_hits: 4,
            cache_evictions: 2,
            deadline_trips: 1,
            queue_depth: 3,
            queue_wait_p50_ms: 0.5,
            queue_wait_p99_ms: 4.0,
            ..StatsSnapshot::default()
        });
        let mut traced = Response::ok("t-1");
        traced.trace_id = Some("t-00000000-00000001".into());
        traced.trace = Some({
            let mut t = obs::Trace::new("t-00000000-00000001");
            t.push(obs::trace::phase::SOLVE, 0, 0, 1200, "");
            t.push(obs::trace::phase::PARSE, 1, 0, 200, "");
            t.push(obs::trace::phase::PRESOLVE, 1, 200, 1000, "unrealizable");
            t
        });
        let mut metrics = Response::ok("m-1");
        metrics.metrics = Some("# TYPE solver_requests_total counter\n".into());
        let responses = [
            verdict,
            stats,
            traced,
            metrics,
            Response::error("r-2", ErrorCode::Overloaded, "72 jobs in flight"),
        ];
        for response in responses {
            let text = response.to_json().to_string_pretty();
            let reparsed = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(reparsed, response);
        }
    }

    #[test]
    fn solve_requests_without_a_problem_are_rejected() {
        let json = Json::Obj(vec![
            ("op".into(), Json::Str("solve".into())),
            ("id".into(), Json::Str("r".into())),
        ]);
        assert!(Request::from_json(&json).is_err());
    }

    #[test]
    fn names_round_trip() {
        for op in [Op::Solve, Op::Ping, Op::Stats, Op::Metrics, Op::Shutdown] {
            assert_eq!(Op::parse(op.as_str()), Some(op));
        }
        for code in [
            ErrorCode::FrameTooLarge,
            ErrorCode::MalformedJson,
            ErrorCode::MalformedRequest,
            ErrorCode::ParseError,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        for status in [
            ResponseStatus::Ok,
            ResponseStatus::Timeout,
            ResponseStatus::Error,
        ] {
            assert_eq!(ResponseStatus::parse(status.as_str()), Some(status));
        }
    }

    #[test]
    fn fingerprints_render_as_16_hex_digits() {
        assert_eq!(fingerprint_hex(0), "0000000000000000");
        assert_eq!(fingerprint_hex(u64::MAX), "ffffffffffffffff");
        assert_eq!(fingerprint_hex(0xdead_beef), "00000000deadbeef");
    }
}
