//! A minimal JSON tree, writer, and recursive-descent parser.
//!
//! The build environment is offline (no serde), so the report format is
//! hand-rolled. Two properties matter here and are guaranteed by
//! construction:
//!
//! * **deterministic output** — objects keep insertion order (`Vec` of
//!   pairs, not a hash map) and the writer is pure, so equal trees always
//!   serialize to identical bytes, and
//! * **round-tripping** — `parse(v.to_string_pretty())` reproduces `v` for
//!   every tree the report module emits.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse error with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => out.push_str(&fmt_number(*n)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Formats a number the way the report expects: integers without a decimal
/// point, everything else via Rust's shortest-round-trip `f64` display.
fn fmt_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("bad number `{text}`"),
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Combine a surrogate pair when one follows.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        char::from_u32(
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) {
        let text = value.to_string_pretty();
        let parsed = Json::parse(&text).expect("parse back");
        assert_eq!(&parsed, value, "round trip through:\n{text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Json::Null);
        round_trip(&Json::Bool(true));
        round_trip(&Json::Bool(false));
        round_trip(&Json::Num(0.0));
        round_trip(&Json::Num(-17.0));
        round_trip(&Json::Num(3.125));
        round_trip(&Json::Num(1e-9));
        round_trip(&Json::Str("hello".into()));
        round_trip(&Json::Str("quote \" slash \\ newline \n tab \t".into()));
        round_trip(&Json::Str("unicode: ✗ λ".into()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Json::Obj(vec![
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Obj(vec![("k".into(), Json::Str("v".into()))]),
                    Json::Null,
                ]),
            ),
        ]);
        round_trip(&value);
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"b": 1, "a": 2}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(
            parsed,
            Json::Obj(vec![
                ("b".into(), Json::Num(1.0)),
                ("a".into(), Json::Num(2.0))
            ])
        );
    }

    #[test]
    fn escapes_parse() {
        let parsed = Json::parse(r#""aA\né""#).unwrap();
        assert_eq!(parsed, Json::Str("aA\né".into()));
    }

    #[test]
    fn surrogate_pairs_parse_and_unpaired_surrogates_are_rejected() {
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // High surrogate followed by a non-low-surrogate escape is invalid,
        // not a silently combined character.
        assert!(Json::parse(r#""\ud800A""#).is_err());
        // Lone high surrogate before a plain character is invalid too.
        assert!(Json::parse(r#""\ud800x""#).is_err());
    }

    #[test]
    fn errors_carry_an_offset() {
        let err = Json::parse("[1, 2").unwrap_err();
        assert!(err.offset > 0);
        assert!(Json::parse("{\"k\" 1}").is_err());
        assert!(Json::parse("[] junk").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn equal_trees_serialize_identically() {
        let a = Json::Obj(vec![("x".into(), Json::Num(1.5))]);
        let b = Json::Obj(vec![("x".into(), Json::Num(1.5))]);
        assert_eq!(a.to_string_pretty(), b.to_string_pretty());
    }
}
