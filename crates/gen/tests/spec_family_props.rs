//! Bulk validation of the data-driven (`FamilySpec`) families: on 1 000
//! instances each, the printed SyGuS-IF text must parse back to identical
//! content, and the instance's own by-construction claim — its expected
//! verdict plus witness — must pass every oracle layer. This is the
//! add-a-family-as-data safety net: a new spec entry that produces
//! unsound ground truth or unprintable problems fails here before any
//! engine ever sees it.

use gen::{check_instance, roundtrip_violation, Claim, EngineClaim, Family, GenConfig};

fn validate_family(family: Family) {
    let config = GenConfig::new(7).with_families(vec![family]);
    for draw_index in 0..1_000u64 {
        let instance = config.instance_at(draw_index);
        assert_eq!(instance.family, family);
        if let Some(violation) = roundtrip_violation(&instance) {
            panic!("print→parse round trip failed: {violation}");
        }
        // The generator's own claim must satisfy its own oracle: a
        // realizable instance's witness is validated against the spec on
        // the probe grid; an unrealizable claim must not contradict the
        // expectation.
        let claim = match instance.witness.clone() {
            Some(witness) => EngineClaim::new("generator", Claim::Realizable, Some(witness)),
            None => EngineClaim::new("generator", Claim::Unrealizable, None),
        };
        let violations = check_instance(&instance, &[claim]);
        assert!(
            violations.is_empty(),
            "by-construction claim rejected on {} (instance_seed {}): {:#?}",
            instance.name(),
            instance.seed,
            violations
        );
        // Witness presence is the verdict class, by construction.
        assert_eq!(
            instance.witness.is_some(),
            instance.expected == gen::Expectation::Realizable,
        );
    }
}

#[test]
fn mod_pool_round_trips_and_matches_its_claim_on_1k_instances() {
    validate_family(Family::ModPool);
}

#[test]
fn mod_ite_round_trips_and_matches_its_claim_on_1k_instances() {
    validate_family(Family::ModIte);
}

#[test]
fn mod_neg_round_trips_and_matches_its_claim_on_1k_instances() {
    validate_family(Family::ModNeg);
}
