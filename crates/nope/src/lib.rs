//! **nope** — the baseline unrealizability prover the paper compares against
//! (Hu et al., CAV 2019).
//!
//! nope reduces unrealizability of a SyGuS problem over examples to
//! *unreachability* in a non-deterministic recursive program: every
//! nonterminal becomes a procedure, every production a non-deterministic
//! branch, and an assertion at the end of `main` fails exactly when the
//! chosen term satisfies the specification on all examples. The original
//! tool hands this program to SeaHorn; this reproduction verifies it with a
//! bounded concrete exploration plus an abstract interpretation over the
//! interval × congruence domain (see DESIGN.md for the substitution).
//!
//! Compared with the grammar-flow-analysis approach of the `nay` crate, the
//! reduction is indirect: it produces a program whose analysis rediscovers
//! the information that nay's equations express directly, which is the
//! source of the slowdown reported in §8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod program;
pub mod verify;

pub use program::{Procedure, ProgExpr, Program};
pub use verify::{CheckOutcome, NopeVerdict, ProgramVerifier};

use runner::Cancel;
use std::time::{Duration, Instant};
use sygus::{ExampleSet, Problem};

/// Statistics of a nope run, mirroring what the benchmark harness reports.
#[derive(Clone, Debug, Default)]
pub struct NopeStats {
    /// Number of procedures in the generated program.
    pub num_procedures: usize,
    /// Number of non-deterministic branches.
    pub num_branches: usize,
    /// Number of call sites (encoding size).
    pub num_call_sites: usize,
    /// Fixed-point iterations performed by the abstract interpreter
    /// (0 when the bounded search already decided the verdict).
    pub abstract_iterations: usize,
    /// Peak size of the bounded search's term arena (distinct terms
    /// interned while exploring reachable vectors).
    pub arena_terms: usize,
    /// Wall-clock time of the check.
    pub elapsed: Duration,
}

/// The nope solver: build the program, then verify reachability.
#[derive(Clone, Debug, Default)]
pub struct NopeSolver {
    verifier: ProgramVerifier,
}

impl NopeSolver {
    /// Creates a solver with default verification budgets.
    pub fn new() -> Self {
        NopeSolver::default()
    }

    /// Overrides the program verifier configuration.
    pub fn with_verifier(mut self, verifier: ProgramVerifier) -> Self {
        self.verifier = verifier;
        self
    }

    /// Checks unrealizability of `problem` restricted to `examples`.
    pub fn check(&self, problem: &Problem, examples: &ExampleSet) -> (NopeVerdict, NopeStats) {
        self.check_cancellable(problem, examples, &Cancel::never())
    }

    /// [`NopeSolver::check`] with cooperative cancellation: the token is
    /// threaded into the bounded search and the abstract-interpreter
    /// fixpoint, which poll it once per loop iteration; a trip yields
    /// [`NopeVerdict::Cancelled`].
    pub fn check_cancellable(
        &self,
        problem: &Problem,
        examples: &ExampleSet,
        cancel: &Cancel,
    ) -> (NopeVerdict, NopeStats) {
        let started = Instant::now();
        let program = Program::from_grammar(problem.grammar(), examples);
        let outcome = self
            .verifier
            .check_instrumented(&program, examples, problem.spec(), cancel);
        let stats = NopeStats {
            num_procedures: program.procedures.len(),
            num_branches: program.num_branches(),
            num_call_sites: program.num_call_sites(),
            abstract_iterations: outcome.abstract_iterations,
            arena_terms: outcome.arena_terms,
            elapsed: started.elapsed(),
        };
        (outcome.verdict, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{LinearExpr, Var};
    use sygus::{GrammarBuilder, Sort, Spec, Symbol};

    #[test]
    fn end_to_end_unrealizability() {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        let problem = Problem::new("g1", grammar, spec);
        let examples = ExampleSet::for_single_var("x", [1]);
        let (verdict, stats) = NopeSolver::new().check(&problem, &examples);
        assert_eq!(verdict, NopeVerdict::Unrealizable);
        assert_eq!(stats.num_procedures, 4);
        assert_eq!(stats.num_branches, 5);
        assert!(stats.num_call_sites > 0);
    }
}
