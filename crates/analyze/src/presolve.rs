//! The abstract pre-solve: a cheap static attempt to settle a SyGuS
//! problem before any engine runs.
//!
//! Three lanes, in order:
//!
//! 1. **Empty language** — the start symbol derives no term at all, so no
//!    solution exists: `Unrealizable`.
//! 2. **Finite enumeration** — when the grammar's language is finite and
//!    small, every term is checked against the exact counterexample query
//!    ([`sygus::encode::counterexample_query`]): a term with an `Unsat`
//!    query is a verified witness (`Realizable`); if *every* term has a
//!    concrete counterexample the language is exhausted (`Unrealizable`).
//! 3. **Abstract refutation** — an interval/parity abstract interpretation
//!    of the grammar's nonterminals under a concrete probe input (a
//!    lightweight cousin of the in-tree `gfa` flow analysis). Every
//!    program in `L(G)` evaluates, on that input, to a value inside the
//!    abstract output; if the exact QF-LIA solver proves that no such
//!    value satisfies the instantiated specification, the problem is
//!    `Unrealizable`.
//!
//! All three lanes abstain (verdict [`PresolveVerdict::Unknown`]) rather
//! than guess whenever the solver returns `Unknown` or a cap is hit, so a
//! presolve verdict is always backed by an exact proof — this is what
//! makes it safe for the portfolio to skip engine dispatch. Every
//! definitive outcome carries a [`PresolveReason`] that
//! [`Presolver::recheck`] can re-validate from scratch.

use std::fmt;

use logic::{Formula, LinearExpr, Solver, SolverResult, Var};
use sygus::encode::counterexample_query;
use sygus::{Example, Grammar, Problem, Spec, Symbol, Term};

use crate::grammar::analyze_grammar;

/// What the presolve concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PresolveVerdict {
    /// A verified witness term exists.
    Realizable,
    /// No term of the grammar can satisfy the specification.
    Unrealizable,
    /// The presolve abstained; engines must run.
    Unknown,
}

impl PresolveVerdict {
    /// Stable lower-case name, matching the engines' verdict strings.
    pub fn name(&self) -> &'static str {
        match self {
            PresolveVerdict::Realizable => "realizable",
            PresolveVerdict::Unrealizable => "unrealizable",
            PresolveVerdict::Unknown => "unknown",
        }
    }
}

impl fmt::Display for PresolveVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parity of an integer abstract value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Parity {
    /// No value yet (bottom).
    Bottom,
    /// All values are even.
    Even,
    /// All values are odd.
    Odd,
    /// Both parities occur (top).
    Top,
}

impl Parity {
    fn of(v: i64) -> Parity {
        if v.rem_euclid(2) == 0 {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    fn join(self, other: Parity) -> Parity {
        match (self, other) {
            (Parity::Bottom, p) | (p, Parity::Bottom) => p,
            (a, b) if a == b => a,
            _ => Parity::Top,
        }
    }

    fn add(self, other: Parity) -> Parity {
        match (self, other) {
            (Parity::Bottom, _) | (_, Parity::Bottom) => Parity::Bottom,
            (Parity::Top, _) | (_, Parity::Top) => Parity::Top,
            (a, b) if a == b => Parity::Even,
            _ => Parity::Odd,
        }
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parity::Bottom => write!(f, "⊥"),
            Parity::Even => write!(f, "even"),
            Parity::Odd => write!(f, "odd"),
            Parity::Top => write!(f, "⊤"),
        }
    }
}

/// An integer abstract value: an interval (`None` = unbounded) refined
/// with a parity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsInt {
    /// Lower bound; `None` is −∞.
    pub lo: Option<i64>,
    /// Upper bound; `None` is +∞.
    pub hi: Option<i64>,
    /// Parity refinement.
    pub parity: Parity,
}

impl AbsInt {
    fn singleton(v: i64) -> AbsInt {
        AbsInt {
            lo: Some(v),
            hi: Some(v),
            parity: Parity::of(v),
        }
    }

    fn top() -> AbsInt {
        AbsInt {
            lo: None,
            hi: None,
            parity: Parity::Top,
        }
    }

    fn join(self, other: AbsInt) -> AbsInt {
        AbsInt {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
            parity: self.parity.join(other.parity),
        }
    }

    fn add(self, other: AbsInt) -> AbsInt {
        AbsInt {
            lo: self.lo.zip(other.lo).and_then(|(a, b)| a.checked_add(b)),
            hi: self.hi.zip(other.hi).and_then(|(a, b)| a.checked_add(b)),
            parity: self.parity.add(other.parity),
        }
    }

    fn sub(self, other: AbsInt) -> AbsInt {
        AbsInt {
            lo: self.lo.zip(other.hi).and_then(|(a, b)| a.checked_sub(b)),
            hi: self.hi.zip(other.lo).and_then(|(a, b)| a.checked_sub(b)),
            // parity of a − b equals parity of a + b
            parity: self.parity.add(other.parity),
        }
    }

    /// Standard interval widening: a bound that moved since `self` jumps
    /// to infinity.
    fn widen(self, next: AbsInt) -> AbsInt {
        AbsInt {
            lo: match (self.lo, next.lo) {
                (Some(a), Some(b)) if b >= a => Some(a),
                _ => None,
            },
            hi: match (self.hi, next.hi) {
                (Some(a), Some(b)) if b <= a => Some(a),
                _ => None,
            },
            parity: self.parity.join(next.parity),
        }
    }

    fn intersects(self, other: AbsInt) -> bool {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        match (lo, hi) {
            (Some(l), Some(h)) => l <= h,
            _ => true,
        }
    }

    fn is_singleton(self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for AbsInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Some(lo) => write!(f, "[{lo}, ")?,
            None => write!(f, "(-∞, ")?,
        }
        match self.hi {
            Some(hi) => write!(f, "{hi}]")?,
            None => write!(f, "+∞)")?,
        }
        match self.parity {
            Parity::Even => write!(f, " even"),
            Parity::Odd => write!(f, " odd"),
            _ => Ok(()),
        }
    }
}

/// A Boolean abstract value: which truth values may occur.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsBool {
    /// `true` may occur.
    pub may_true: bool,
    /// `false` may occur.
    pub may_false: bool,
}

impl AbsBool {
    fn top() -> AbsBool {
        AbsBool {
            may_true: true,
            may_false: true,
        }
    }

    fn join(self, other: AbsBool) -> AbsBool {
        AbsBool {
            may_true: self.may_true || other.may_true,
            may_false: self.may_false || other.may_false,
        }
    }
}

impl fmt::Display for AbsBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.may_true, self.may_false) {
            (true, true) => write!(f, "{{true, false}}"),
            (true, false) => write!(f, "{{true}}"),
            (false, true) => write!(f, "{{false}}"),
            (false, false) => write!(f, "∅"),
        }
    }
}

/// A value of the combined abstract domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsVal {
    /// No derivation reaches this point yet.
    Bottom,
    /// An integer-sorted abstract value.
    Int(AbsInt),
    /// A Boolean-sorted abstract value.
    Bool(AbsBool),
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Bottom, v) | (v, AbsVal::Bottom) => v,
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.join(b)),
            (AbsVal::Bool(a), AbsVal::Bool(b)) => AbsVal::Bool(a.join(b)),
            // sort clash (impossible in a built grammar): go to a safe top
            (AbsVal::Int(_), _) | (_, AbsVal::Int(_)) => AbsVal::Int(AbsInt::top()),
        }
    }

    fn widen(self, next: AbsVal) -> AbsVal {
        match (self, next) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.widen(b)),
            (a, b) => a.join(b),
        }
    }

    fn as_int(self) -> Option<AbsInt> {
        match self {
            AbsVal::Int(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsVal::Bottom => write!(f, "⊥"),
            AbsVal::Int(a) => write!(f, "{a}"),
            AbsVal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Why the presolve reached its verdict. Every definitive reason can be
/// re-validated from scratch via [`Presolver::recheck`].
#[derive(Clone, Debug)]
pub enum PresolveReason {
    /// The start symbol is unproductive: `L(G) = ∅`.
    EmptyLanguage,
    /// A finite language contained a term whose counterexample query is
    /// unsatisfiable (the term in [`PresolveOutcome::witness`]).
    FiniteWitness {
        /// Size of the enumerated language.
        candidates: usize,
    },
    /// A finite language was exhausted: every term has a concrete
    /// counterexample.
    FiniteExhausted {
        /// Size of the enumerated language.
        candidates: usize,
    },
    /// On the given concrete input, the abstract output of the grammar
    /// cannot satisfy the specification (proved by an exact QF-LIA query).
    AbstractRefutation {
        /// The probe input, one `(variable, value)` pair per input.
        inputs: Vec<(String, i64)>,
        /// The abstract output of the start symbol on that input.
        output: AbsVal,
    },
    /// No lane concluded anything.
    Abstain {
        /// What was tried.
        detail: String,
    },
}

impl fmt::Display for PresolveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PresolveReason::EmptyLanguage => write!(f, "the grammar derives no terms"),
            PresolveReason::FiniteWitness { candidates } => write!(
                f,
                "finite language ({candidates} terms) contains a verified witness"
            ),
            PresolveReason::FiniteExhausted { candidates } => write!(
                f,
                "finite language exhausted: all {candidates} terms have counterexamples"
            ),
            PresolveReason::AbstractRefutation { inputs, output } => {
                write!(f, "abstract output {output} on input ")?;
                if inputs.is_empty() {
                    write!(f, "()")?;
                } else {
                    let rendered: Vec<String> =
                        inputs.iter().map(|(x, v)| format!("{x}={v}")).collect();
                    write!(f, "{}", rendered.join(", "))?;
                }
                write!(f, " cannot satisfy the specification")
            }
            PresolveReason::Abstain { detail } => write!(f, "abstained: {detail}"),
        }
    }
}

/// The outcome of a presolve run.
#[derive(Clone, Debug)]
pub struct PresolveOutcome {
    /// The verdict.
    pub verdict: PresolveVerdict,
    /// The checkable reason.
    pub reason: PresolveReason,
    /// A verified witness term, for `Realizable` verdicts.
    pub witness: Option<Term>,
}

impl PresolveOutcome {
    /// `true` when the presolve settled the problem.
    pub fn is_definitive(&self) -> bool {
        self.verdict != PresolveVerdict::Unknown
    }

    fn abstain(detail: impl Into<String>) -> PresolveOutcome {
        PresolveOutcome {
            verdict: PresolveVerdict::Unknown,
            reason: PresolveReason::Abstain {
                detail: detail.into(),
            },
            witness: None,
        }
    }
}

/// The static pre-solver. All caps are deliberately small: the presolve
/// runs in front of *every* portfolio race and must cost microseconds to
/// low milliseconds, never compete with the engines.
#[derive(Clone, Debug)]
pub struct Presolver {
    solver: Solver,
    /// Finite-language verification is skipped above this many candidates.
    max_candidates: usize,
    /// At most this many probe inputs are tried in the abstract lane.
    max_probes: usize,
}

impl Default for Presolver {
    fn default() -> Self {
        Presolver::new()
    }
}

/// Kleene rounds before widening kicks in.
const WIDEN_AFTER: usize = 8;
/// Hard cap on fixpoint rounds (reached only by pathological grammars;
/// the result then falls back to top, which is always sound).
const MAX_ROUNDS: usize = 64;

impl Presolver {
    /// A presolver with the default (small) budgets.
    pub fn new() -> Self {
        Presolver {
            solver: Solver::default(),
            max_candidates: 64,
            max_probes: 16,
        }
    }

    /// Runs the three lanes on a problem.
    pub fn presolve(&self, problem: &Problem) -> PresolveOutcome {
        let grammar = problem.grammar();
        let spec = problem.spec();
        let report = analyze_grammar(grammar);

        // Lane 1: empty language.
        if report.empty_language {
            return PresolveOutcome {
                verdict: PresolveVerdict::Unrealizable,
                reason: PresolveReason::EmptyLanguage,
                witness: None,
            };
        }

        // Lane 2: finite enumeration.
        if let Some(finite) = &report.finite {
            if finite.complete && finite.terms.len() <= self.max_candidates {
                let mut all_refuted = true;
                for t in &finite.terms {
                    match self.solver.check(&counterexample_query(t, spec)) {
                        SolverResult::Unsat => {
                            return PresolveOutcome {
                                verdict: PresolveVerdict::Realizable,
                                reason: PresolveReason::FiniteWitness {
                                    candidates: finite.terms.len(),
                                },
                                witness: Some(t.clone()),
                            }
                        }
                        SolverResult::Sat(_) => {}
                        SolverResult::Unknown => all_refuted = false,
                    }
                }
                if all_refuted {
                    return PresolveOutcome {
                        verdict: PresolveVerdict::Unrealizable,
                        reason: PresolveReason::FiniteExhausted {
                            candidates: finite.terms.len(),
                        },
                        witness: None,
                    };
                }
                // fall through to the abstract lane
            }
        }

        // Lane 3: abstract refutation over probe inputs.
        let probes = self.probes(spec);
        for probe in &probes {
            let abs = abstract_output(grammar, probe);
            let Some(query) = refutation_query(spec, probe, &abs) else {
                continue;
            };
            if self.solver.check(&query) == SolverResult::Unsat {
                let inputs: Vec<(String, i64)> = spec
                    .input_vars()
                    .iter()
                    .filter_map(|x| probe.get(x).map(|v| (x.clone(), v)))
                    .collect();
                return PresolveOutcome {
                    verdict: PresolveVerdict::Unrealizable,
                    reason: PresolveReason::AbstractRefutation {
                        inputs,
                        output: abs,
                    },
                    witness: None,
                };
            }
        }

        PresolveOutcome::abstain(format!(
            "no refutation on {} probes; language {}",
            probes.len(),
            if report.finite.is_some() {
                "finite but not settled"
            } else {
                "infinite"
            }
        ))
    }

    /// Independently re-validates a presolve outcome against the problem.
    ///
    /// This is the *gate* the portfolio applies before trusting a presolve
    /// verdict: the reason is re-derived from scratch (re-enumeration,
    /// re-abstraction, fresh solver queries), so a bug that fabricated a
    /// verdict without a valid proof is caught here instead of flipping a
    /// race verdict.
    pub fn recheck(&self, problem: &Problem, outcome: &PresolveOutcome) -> bool {
        let grammar = problem.grammar();
        let spec = problem.spec();
        match &outcome.reason {
            PresolveReason::EmptyLanguage => {
                outcome.verdict == PresolveVerdict::Unrealizable
                    && !grammar.productive().contains(grammar.start())
            }
            PresolveReason::FiniteWitness { .. } => {
                outcome.verdict == PresolveVerdict::Realizable
                    && match &outcome.witness {
                        Some(w) => {
                            grammar.contains_term(w)
                                && self.solver.check(&counterexample_query(w, spec))
                                    == SolverResult::Unsat
                        }
                        None => false,
                    }
            }
            PresolveReason::FiniteExhausted { candidates } => {
                if outcome.verdict != PresolveVerdict::Unrealizable {
                    return false;
                }
                let report = analyze_grammar(grammar);
                match &report.finite {
                    Some(f) if f.complete && f.terms.len() == *candidates => {
                        f.terms.iter().all(|t| {
                            matches!(
                                self.solver.check(&counterexample_query(t, spec)),
                                SolverResult::Sat(_)
                            )
                        })
                    }
                    _ => false,
                }
            }
            PresolveReason::AbstractRefutation { inputs, output } => {
                if outcome.verdict != PresolveVerdict::Unrealizable {
                    return false;
                }
                let probe = Example::from_pairs(inputs.iter().map(|(x, v)| (x.clone(), *v)));
                let recomputed = abstract_output(grammar, &probe);
                recomputed == *output
                    && match refutation_query(spec, &probe, &recomputed) {
                        Some(q) => self.solver.check(&q) == SolverResult::Unsat,
                        None => false,
                    }
            }
            PresolveReason::Abstain { .. } => outcome.verdict == PresolveVerdict::Unknown,
        }
    }

    /// Deterministic probe inputs: a small grid around zero, extended with
    /// values mined from the specification's atoms (so point constraints
    /// like `x = 7 ⇒ …` get probed at exactly `x = 7`).
    fn probes(&self, spec: &Spec) -> Vec<Example> {
        let vars = spec.input_vars();
        if vars.is_empty() {
            return vec![Example::new()];
        }
        let mut values: Vec<i64> = vec![0, 1, -1, 2, -2];
        for atom in spec.formula().atoms() {
            let d = atom.difference();
            let c = d.constant_part();
            for (v, coeff) in d.terms() {
                if *v == Spec::output_var() {
                    continue;
                }
                // a ±1-coefficient variable solves to ∓constant when the
                // other variables are zero — exactly the axis probes below
                let mined = match coeff {
                    1 => -c,
                    -1 => c,
                    _ => continue,
                };
                if !values.contains(&mined) {
                    values.push(mined);
                }
            }
        }
        values.truncate(12);

        let mut probes: Vec<Example> = Vec::new();
        let push = |probes: &mut Vec<Example>, e: Example| {
            if probes.len() < self.max_probes && !probes.contains(&e) {
                probes.push(e);
            }
        };
        for &v in &values {
            // diagonal probe: every variable = v (for one variable this is
            // the whole grid)
            push(
                &mut probes,
                Example::from_pairs(vars.iter().map(|x| (x.clone(), v))),
            );
            // axis probes: one variable = v, the others 0
            if vars.len() > 1 && v != 0 {
                for x in vars {
                    push(
                        &mut probes,
                        Example::from_pairs(
                            vars.iter().map(|y| (y.clone(), if y == x { v } else { 0 })),
                        ),
                    );
                }
            }
        }
        probes
    }
}

/// The abstract output of the grammar's start symbol when every input
/// variable is fixed to its value in `probe` (variables absent from the
/// probe are treated as unconstrained). A Kleene fixpoint with interval
/// widening after `WIDEN_AFTER` rounds; sound by construction — every
/// concrete program output on `probe` lies in the result.
pub fn abstract_output(grammar: &Grammar, probe: &Example) -> AbsVal {
    let nts = grammar.nonterminals();
    let index = |nt: &sygus::NonTerminal| nts.iter().position(|n| n == nt);
    let mut vals: Vec<AbsVal> = vec![AbsVal::Bottom; nts.len()];
    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for p in grammar.productions() {
            let Some(lhs) = index(&p.lhs) else { continue };
            let args: Option<Vec<AbsVal>> =
                p.args.iter().map(|a| index(a).map(|i| vals[i])).collect();
            let Some(args) = args else { continue };
            let v = eval_symbol(&p.symbol, &args, probe);
            if v == AbsVal::Bottom {
                continue;
            }
            let joined = vals[lhs].join(v);
            let next = if round >= WIDEN_AFTER {
                vals[lhs].widen(joined)
            } else {
                joined
            };
            if next != vals[lhs] {
                vals[lhs] = next;
                changed = true;
            }
        }
        if !changed {
            return index(grammar.start()).map_or(AbsVal::Bottom, |i| vals[i]);
        }
    }
    // Pathological non-convergence: fall back to top (always sound).
    match grammar.sort_of(grammar.start()) {
        Some(sygus::Sort::Bool) => AbsVal::Bool(AbsBool::top()),
        _ => AbsVal::Int(AbsInt::top()),
    }
}

fn eval_symbol(symbol: &Symbol, args: &[AbsVal], probe: &Example) -> AbsVal {
    if args.contains(&AbsVal::Bottom) {
        return AbsVal::Bottom;
    }
    let int = |i: usize| args.get(i).copied().and_then(AbsVal::as_int);
    match symbol {
        Symbol::Num(c) => AbsVal::Int(AbsInt::singleton(*c)),
        Symbol::Var(x) => AbsVal::Int(probe.get(x).map_or_else(AbsInt::top, AbsInt::singleton)),
        Symbol::NegVar(x) => AbsVal::Int(
            probe
                .get(x)
                .and_then(i64::checked_neg)
                .map_or_else(AbsInt::top, AbsInt::singleton),
        ),
        Symbol::Plus => {
            let mut acc = match int(0) {
                Some(a) => a,
                None => return AbsVal::Int(AbsInt::top()),
            };
            for i in 1..args.len() {
                match int(i) {
                    Some(b) => acc = acc.add(b),
                    None => return AbsVal::Int(AbsInt::top()),
                }
            }
            AbsVal::Int(acc)
        }
        Symbol::Minus => match (int(0), int(1)) {
            (Some(a), Some(b)) => AbsVal::Int(a.sub(b)),
            _ => AbsVal::Int(AbsInt::top()),
        },
        Symbol::IfThenElse => {
            let (t, e) = (
                args.get(1).copied().unwrap_or(AbsVal::Bottom),
                args.get(2).copied().unwrap_or(AbsVal::Bottom),
            );
            match args.first() {
                Some(AbsVal::Bool(c)) if !c.may_false => t,
                Some(AbsVal::Bool(c)) if !c.may_true => e,
                _ => t.join(e),
            }
        }
        Symbol::And | Symbol::Or | Symbol::Not => {
            let b = |i: usize| match args.get(i) {
                Some(AbsVal::Bool(b)) => *b,
                _ => AbsBool::top(),
            };
            let v = match symbol {
                Symbol::And => AbsBool {
                    may_true: b(0).may_true && b(1).may_true,
                    may_false: b(0).may_false || b(1).may_false,
                },
                Symbol::Or => AbsBool {
                    may_true: b(0).may_true || b(1).may_true,
                    may_false: b(0).may_false && b(1).may_false,
                },
                _ => AbsBool {
                    may_true: b(0).may_false,
                    may_false: b(0).may_true,
                },
            };
            AbsVal::Bool(v)
        }
        Symbol::LessThan => match (int(0), int(1)) {
            (Some(a), Some(b)) => AbsVal::Bool(AbsBool {
                // some v_a < v_b exists iff a's minimum lies below b's maximum
                may_true: match (a.lo, b.hi) {
                    (Some(lo), Some(hi)) => lo < hi,
                    _ => true,
                },
                // some v_a ≥ v_b exists iff a's maximum reaches b's minimum
                may_false: match (a.hi, b.lo) {
                    (Some(hi), Some(lo)) => hi >= lo,
                    _ => true,
                },
            }),
            _ => AbsVal::Bool(AbsBool::top()),
        },
        Symbol::Equal => match (int(0), int(1)) {
            (Some(a), Some(b)) => {
                let parity_disjoint = matches!(
                    (a.parity, b.parity),
                    (Parity::Even, Parity::Odd) | (Parity::Odd, Parity::Even)
                );
                let both_same_singleton = match (a.is_singleton(), b.is_singleton()) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                };
                AbsVal::Bool(AbsBool {
                    may_true: a.intersects(b) && !parity_disjoint,
                    may_false: !both_same_singleton,
                })
            }
            _ => AbsVal::Bool(AbsBool::top()),
        },
    }
}

/// `γ(abs)(out) ∧ ψ[x̄ := probe]`: satisfiable iff some value the grammar
/// can produce on `probe` satisfies the instantiated specification. An
/// `Unsat` answer is therefore an unrealizability proof. Returns `None`
/// when the abstraction supports no sound encoding (bottom values).
fn refutation_query(spec: &Spec, probe: &Example, abs: &AbsVal) -> Option<Formula> {
    let out = Var::new("__presolve_out");
    let psi = spec.instantiate(probe, &out);
    let mut parts: Vec<Formula> = Vec::new();
    match abs {
        AbsVal::Bottom => return None,
        AbsVal::Int(a) => {
            if let Some(lo) = a.lo {
                parts.push(Formula::ge(
                    LinearExpr::var(out.clone()),
                    LinearExpr::constant(lo),
                ));
            }
            if let Some(hi) = a.hi {
                parts.push(Formula::le(
                    LinearExpr::var(out.clone()),
                    LinearExpr::constant(hi),
                ));
            }
            let k = Var::new("__presolve_k");
            match a.parity {
                Parity::Even => parts.push(Formula::eq(
                    LinearExpr::var(out.clone()),
                    LinearExpr::var(k).scale(2),
                )),
                Parity::Odd => parts.push(Formula::eq(
                    LinearExpr::var(out.clone()),
                    LinearExpr::var(k).scale(2) + LinearExpr::constant(1),
                )),
                Parity::Top => {}
                Parity::Bottom => return None,
            }
        }
        AbsVal::Bool(b) => {
            // Boolean outputs use the 0/1 integer encoding of the spec
            parts.push(Formula::ge(
                LinearExpr::var(out.clone()),
                LinearExpr::constant(0),
            ));
            parts.push(Formula::le(
                LinearExpr::var(out.clone()),
                LinearExpr::constant(1),
            ));
            if !b.may_true {
                parts.push(Formula::eq(
                    LinearExpr::var(out.clone()),
                    LinearExpr::constant(0),
                ));
            }
            if !b.may_false {
                parts.push(Formula::eq(
                    LinearExpr::var(out.clone()),
                    LinearExpr::constant(1),
                ));
            }
        }
    }
    parts.push(psi);
    Some(Formula::and(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus::{GrammarBuilder, Sort};

    fn presolver() -> Presolver {
        Presolver::new()
    }

    fn problem(grammar: Grammar, spec: Spec) -> Problem {
        Problem::new("presolve-test", grammar, spec)
    }

    #[test]
    fn empty_language_is_unrealizable() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(LinearExpr::constant(0), vec![]);
        let p = problem(g, spec);
        let out = presolver().presolve(&p);
        assert_eq!(out.verdict, PresolveVerdict::Unrealizable);
        assert!(matches!(out.reason, PresolveReason::EmptyLanguage));
        assert!(presolver().recheck(&p, &out));
    }

    #[test]
    fn finite_language_witness_is_found_and_verified() {
        // Start ::= 1 | 2, spec f = 2
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Num(2), &[])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(LinearExpr::constant(2), vec![]);
        let p = problem(g, spec);
        let out = presolver().presolve(&p);
        assert_eq!(out.verdict, PresolveVerdict::Realizable);
        assert_eq!(out.witness, Some(Term::num(2)));
        assert!(presolver().recheck(&p, &out));
    }

    #[test]
    fn finite_language_exhaustion_is_unrealizable() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Num(2), &[])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(LinearExpr::constant(3), vec![]);
        let p = problem(g, spec);
        let out = presolver().presolve(&p);
        assert_eq!(out.verdict, PresolveVerdict::Unrealizable);
        assert!(matches!(
            out.reason,
            PresolveReason::FiniteExhausted { candidates: 2 }
        ));
        assert!(presolver().recheck(&p, &out));
    }

    #[test]
    fn parity_refutes_the_unreal_parity_shape() {
        // Start ::= 2 | (- Start Start): every output is even; spec f = 3
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Num(2), &[])
            .production("Start", Symbol::Minus, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(LinearExpr::constant(3), vec!["x".to_string()]);
        let p = problem(g, spec);
        let out = presolver().presolve(&p);
        assert_eq!(out.verdict, PresolveVerdict::Unrealizable);
        match &out.reason {
            PresolveReason::AbstractRefutation { output, .. } => {
                assert_eq!(output.as_int().map(|a| a.parity), Some(Parity::Even));
            }
            other => panic!("unexpected reason {other}"),
        }
        assert!(presolver().recheck(&p, &out));
    }

    #[test]
    fn interval_refutes_a_const_sum_shape() {
        // Start ::= 5 | (+ Start Start): outputs ⊆ [5, ∞); spec f = 3
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Num(5), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(LinearExpr::constant(3), vec![]);
        let p = problem(g, spec);
        let out = presolver().presolve(&p);
        assert_eq!(out.verdict, PresolveVerdict::Unrealizable);
        match &out.reason {
            PresolveReason::AbstractRefutation { output, .. } => {
                assert_eq!(output.as_int().and_then(|a| a.lo), Some(5));
            }
            other => panic!("unexpected reason {other}"),
        }
        assert!(presolver().recheck(&p, &out));
    }

    #[test]
    fn origin_probe_refutes_a_max_gap_shape() {
        // constant-free CLIA grammar: at x = y = 0 every output is 0, but
        // the spec wants f = x + 1
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::Var("x".into()), &[])
            .production("Start", Symbol::Var("y".into()), &[])
            .production("Start", Symbol::Num(0), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")) + LinearExpr::constant(1),
            vec!["x".to_string(), "y".to_string()],
        );
        let p = problem(g, spec);
        let out = presolver().presolve(&p);
        assert_eq!(out.verdict, PresolveVerdict::Unrealizable);
        assert!(presolver().recheck(&p, &out));
    }

    #[test]
    fn realizable_infinite_languages_abstain() {
        // Start ::= x | 0 | (+ Start Start), spec f = 2x — realizable
        // (x + x), but the language is infinite so the presolve abstains
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Var("x".into()), &[])
            .production("Start", Symbol::Num(0), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2),
            vec!["x".to_string()],
        );
        let p = problem(g, spec);
        let out = presolver().presolve(&p);
        assert_eq!(out.verdict, PresolveVerdict::Unknown);
        assert!(presolver().recheck(&p, &out));
    }

    #[test]
    fn recheck_rejects_fabricated_outcomes() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Var("x".into()), &[])
            .production("Start", Symbol::Num(0), &[])
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .expect("well-formed grammar");
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2),
            vec!["x".to_string()],
        );
        let p = problem(g, spec);
        // a made-up empty-language claim must not pass the gate
        let fake = PresolveOutcome {
            verdict: PresolveVerdict::Unrealizable,
            reason: PresolveReason::EmptyLanguage,
            witness: None,
        };
        assert!(!presolver().recheck(&p, &fake));
        // a witness that is not in the grammar must not pass either
        let fake = PresolveOutcome {
            verdict: PresolveVerdict::Realizable,
            reason: PresolveReason::FiniteWitness { candidates: 1 },
            witness: Some(Term::num(7)),
        };
        assert!(!presolver().recheck(&p, &fake));
    }

    #[test]
    fn probes_cover_spec_constants() {
        let spec = Spec::new(
            Formula::implies(
                Formula::eq(LinearExpr::var(Var::new("x")), LinearExpr::constant(7)),
                Formula::eq(LinearExpr::var(Spec::output_var()), LinearExpr::constant(9)),
            ),
            vec!["x".to_string()],
            Sort::Int,
        );
        let probes = presolver().probes(&spec);
        assert!(
            probes.iter().any(|e| e.get("x") == Some(7)),
            "mined probe x=7 missing from {probes:?}"
        );
    }

    #[test]
    fn abstract_domain_arithmetic() {
        assert_eq!(Parity::of(-3), Parity::Odd);
        assert_eq!(Parity::of(-4), Parity::Even);
        assert_eq!(Parity::Even.add(Parity::Odd), Parity::Odd);
        assert_eq!(Parity::Odd.add(Parity::Odd), Parity::Even);
        let a = AbsInt::singleton(2).join(AbsInt::singleton(6));
        assert_eq!((a.lo, a.hi, a.parity), (Some(2), Some(6), Parity::Even));
        let b = a.add(AbsInt::singleton(1));
        assert_eq!((b.lo, b.hi, b.parity), (Some(3), Some(7), Parity::Odd));
        // widening lets moving bounds escape to infinity
        let w = a.widen(a.join(AbsInt::singleton(100)));
        assert_eq!((w.lo, w.hi), (Some(2), None));
        assert!(AbsInt::singleton(3).intersects(AbsInt::singleton(3)));
        assert!(!AbsInt::singleton(3).intersects(AbsInt::singleton(4)));
    }
}
