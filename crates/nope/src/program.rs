//! The non-deterministic recursive program built from a SyGuS-with-examples
//! problem (the reduction of Hu et al., CAV 2019).
//!
//! Each nonterminal of the grammar becomes a procedure that returns the
//! vector of outputs of a non-deterministically chosen term derivable from
//! that nonterminal, evaluated on every input example simultaneously. Each
//! production becomes one non-deterministic branch of the procedure's body.
//! The program ends with an assertion `¬ψ^E(o⃗)` over the value returned by
//! the start procedure: the assertion can fail (i.e. the "bad" location is
//! reachable) iff some term satisfies the specification on all examples —
//! so the SyGuS-with-examples problem is unrealizable iff the bad location
//! is unreachable.

use std::collections::BTreeMap;
use std::fmt;
use sygus::{ExampleSet, Grammar, NonTerminal, Symbol};

/// An expression of a procedure body, mirroring the grammar production that
/// generated it. Values are vectors with one component per example; Boolean
/// results use 0/1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgExpr {
    /// A constant vector (from `Num`, `Var` or `NegVar` leaves), together
    /// with the originating leaf symbol so the bounded search can rebuild
    /// witness *terms* (through the term arena) and not just witness
    /// vectors.
    Const(Vec<i64>, Symbol),
    /// A call to another procedure (non-deterministically picks one of its
    /// branches).
    Call(usize),
    /// Component-wise addition of the operands.
    Add(Vec<ProgExpr>),
    /// Component-wise subtraction.
    Sub(Box<ProgExpr>, Box<ProgExpr>),
    /// Component-wise `if-then-else` (the guard uses 0/1 components).
    Ite(Box<ProgExpr>, Box<ProgExpr>, Box<ProgExpr>),
    /// Component-wise `<` producing 0/1.
    Less(Box<ProgExpr>, Box<ProgExpr>),
    /// Component-wise `=` producing 0/1.
    Equal(Box<ProgExpr>, Box<ProgExpr>),
    /// Component-wise conjunction of 0/1 vectors.
    And(Box<ProgExpr>, Box<ProgExpr>),
    /// Component-wise disjunction of 0/1 vectors.
    Or(Box<ProgExpr>, Box<ProgExpr>),
    /// Component-wise negation of a 0/1 vector.
    Not(Box<ProgExpr>),
}

impl ProgExpr {
    /// Number of `Call` nodes in the expression (a size measure of the
    /// encoding, reported by the benchmark harness).
    pub fn num_calls(&self) -> usize {
        match self {
            ProgExpr::Const(..) => 0,
            ProgExpr::Call(_) => 1,
            ProgExpr::Add(xs) => xs.iter().map(|x| x.num_calls()).sum(),
            ProgExpr::Sub(a, b) => a.num_calls() + b.num_calls(),
            ProgExpr::Ite(a, b, c) => a.num_calls() + b.num_calls() + c.num_calls(),
            ProgExpr::Less(a, b)
            | ProgExpr::Equal(a, b)
            | ProgExpr::And(a, b)
            | ProgExpr::Or(a, b) => a.num_calls() + b.num_calls(),
            ProgExpr::Not(a) => a.num_calls(),
        }
    }
}

/// A procedure: one non-deterministic branch per grammar production.
#[derive(Clone, Debug)]
pub struct Procedure {
    /// The procedure name (the nonterminal it encodes).
    pub name: String,
    /// Whether the procedure returns a 0/1 (Boolean) vector.
    pub boolean: bool,
    /// The non-deterministic branches.
    pub branches: Vec<ProgExpr>,
}

/// The whole non-deterministic recursive program.
#[derive(Clone, Debug)]
pub struct Program {
    /// All procedures; `entry` indexes the start nonterminal's procedure.
    pub procedures: Vec<Procedure>,
    /// Index of the entry procedure.
    pub entry: usize,
    /// Number of examples (the dimension of every value vector).
    pub dim: usize,
}

impl Program {
    /// Builds the program for a grammar and example set.
    ///
    /// # Panics
    /// Panics if an example does not bind a grammar variable (callers
    /// validate examples first).
    pub fn from_grammar(grammar: &Grammar, examples: &ExampleSet) -> Program {
        let dim = examples.len();
        let order: Vec<NonTerminal> = grammar.nonterminals().to_vec();
        let index: BTreeMap<NonTerminal, usize> = order
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, nt)| (nt, i))
            .collect();

        let mut procedures: Vec<Procedure> = order
            .iter()
            .map(|nt| Procedure {
                name: nt.name().to_string(),
                boolean: grammar.sort_of(nt) == Some(sygus::Sort::Bool),
                branches: Vec::new(),
            })
            .collect();

        for p in grammar.productions() {
            let call = |k: usize| ProgExpr::Call(index[&p.args[k]]);
            let branch = match &p.symbol {
                Symbol::Num(c) => ProgExpr::Const(vec![*c; dim], p.symbol.clone()),
                Symbol::Var(x) => ProgExpr::Const(
                    examples.projection(x).expect("example binds the variable"),
                    p.symbol.clone(),
                ),
                Symbol::NegVar(x) => ProgExpr::Const(
                    examples
                        .projection(x)
                        .expect("example binds the variable")
                        .into_iter()
                        .map(|v| -v)
                        .collect(),
                    p.symbol.clone(),
                ),
                Symbol::Plus => ProgExpr::Add((0..p.args.len()).map(call).collect()),
                Symbol::Minus => ProgExpr::Sub(Box::new(call(0)), Box::new(call(1))),
                Symbol::IfThenElse => {
                    ProgExpr::Ite(Box::new(call(0)), Box::new(call(1)), Box::new(call(2)))
                }
                Symbol::LessThan => ProgExpr::Less(Box::new(call(0)), Box::new(call(1))),
                Symbol::Equal => ProgExpr::Equal(Box::new(call(0)), Box::new(call(1))),
                Symbol::And => ProgExpr::And(Box::new(call(0)), Box::new(call(1))),
                Symbol::Or => ProgExpr::Or(Box::new(call(0)), Box::new(call(1))),
                Symbol::Not => ProgExpr::Not(Box::new(call(0))),
            };
            procedures[index[&p.lhs]].branches.push(branch);
        }

        Program {
            entry: index[grammar.start()],
            procedures,
            dim,
        }
    }

    /// Total number of branches across all procedures.
    pub fn num_branches(&self) -> usize {
        self.procedures.iter().map(|p| p.branches.len()).sum()
    }

    /// Total number of call sites (a rough measure of the encoding overhead
    /// compared to working on the grammar directly).
    pub fn num_call_sites(&self) -> usize {
        self.procedures
            .iter()
            .flat_map(|p| p.branches.iter())
            .map(|b| b.num_calls())
            .sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.procedures.iter().enumerate() {
            let marker = if i == self.entry { " (entry)" } else { "" };
            writeln!(f, "proc {}{marker}:", p.name)?;
            for (j, b) in p.branches.iter().enumerate() {
                writeln!(f, "  branch {j}: {b:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygus::{GrammarBuilder, Sort};

    fn g1() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap()
    }

    #[test]
    fn program_mirrors_the_grammar() {
        let examples = ExampleSet::for_single_var("x", [1, 2]);
        let program = Program::from_grammar(&g1(), &examples);
        assert_eq!(program.procedures.len(), 4);
        assert_eq!(program.num_branches(), 5);
        assert_eq!(program.dim, 2);
        assert_eq!(program.procedures[program.entry].name, "Start");
        // the leaf branch carries μ_E(x) = (1, 2) plus its leaf symbol
        let leaf = &program.procedures[3].branches[0];
        assert_eq!(
            leaf,
            &ProgExpr::Const(vec![1, 2], Symbol::Var("x".to_string()))
        );
    }

    #[test]
    fn call_site_count_reflects_encoding_overhead() {
        let examples = ExampleSet::for_single_var("x", [1]);
        let program = Program::from_grammar(&g1(), &examples);
        // Plus(S1, Start), Plus(S2, S3), Plus(S3, S3): 6 call sites
        assert_eq!(program.num_call_sites(), 6);
        assert!(program.to_string().contains("proc Start (entry):"));
    }

    #[test]
    fn boolean_procedures_are_marked() {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .unwrap();
        let examples = ExampleSet::for_single_var("x", [1]);
        let program = Program::from_grammar(&grammar, &examples);
        assert!(!program.procedures[0].boolean);
        assert!(program.procedures[1].boolean);
    }
}
