//! Semi-linear sets: finite unions of linear sets with the semiring
//! operations `⊕`, `⊗` and `⊛`.

use crate::linear::LinearSet;
use crate::vector::IntVec;
use std::collections::BTreeSet;
use std::fmt;

/// A semi-linear set `⋃ᵢ ⟨uᵢ, Vᵢ⟩` (Def. 5.5).
///
/// Semi-linear sets of a fixed dimension form a commutative, idempotent,
/// ω-continuous semiring `(SL, ⊕, ⊗, 0, 1)` (Prop. 5.8):
///
/// * `⊕` is union ([`combine`](SemiLinearSet::combine)),
/// * `⊗` is Minkowski sum ([`extend`](SemiLinearSet::extend)),
/// * `0 = ∅` ([`zero`](SemiLinearSet::zero)), `1 = {⟨0⃗, ∅⟩}`
///   ([`one`](SemiLinearSet::one)),
/// * `⊛` is iterated addition ([`star`](SemiLinearSet::star)).
///
/// The representation is kept canonical (linear sets sorted and
/// deduplicated), and [`prune`](SemiLinearSet::prune) additionally removes
/// trivially-subsumed linear sets — the naySL optimisation of §7.
///
/// # Example
/// ```
/// use semilinear::{IntVec, LinearSet, SemiLinearSet};
/// // {3}⊛ ⊗ {0} = {0 + 3λ}  — footnote 3 of the paper
/// let three = SemiLinearSet::singleton(IntVec::from(vec![3]));
/// let zero = SemiLinearSet::singleton(IntVec::from(vec![0]));
/// let sol = three.star().extend(&zero);
/// assert!(sol.contains(&IntVec::from(vec![9])));
/// assert!(!sol.contains(&IntVec::from(vec![4])));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SemiLinearSet {
    parts: Vec<LinearSet>,
}

impl SemiLinearSet {
    /// The empty semi-linear set (the semiring `0`).
    pub fn zero() -> Self {
        SemiLinearSet { parts: Vec::new() }
    }

    /// The semiring `1` of dimension `dim`: `{⟨0⃗, ∅⟩}`.
    pub fn one(dim: usize) -> Self {
        SemiLinearSet::singleton(IntVec::zeros(dim))
    }

    /// The singleton set `{v}`.
    pub fn singleton(v: IntVec) -> Self {
        SemiLinearSet {
            parts: vec![LinearSet::singleton(v)],
        }
    }

    /// Builds a semi-linear set from linear sets.
    ///
    /// # Panics
    /// Panics if the linear sets do not all have the same dimension.
    pub fn from_linear_sets(parts: impl IntoIterator<Item = LinearSet>) -> Self {
        let mut set: BTreeSet<LinearSet> = BTreeSet::new();
        let mut dim: Option<usize> = None;
        for l in parts {
            match dim {
                None => dim = Some(l.dim()),
                Some(d) => assert_eq!(d, l.dim(), "mixed dimensions in semi-linear set"),
            }
            set.insert(l);
        }
        SemiLinearSet {
            parts: set.into_iter().collect(),
        }
    }

    /// The linear sets making up this semi-linear set.
    pub fn linear_sets(&self) -> &[LinearSet] {
        &self.parts
    }

    /// `true` when the set is empty (the semiring `0`).
    pub fn is_zero(&self) -> bool {
        self.parts.is_empty()
    }

    /// The dimension of the member vectors, or `None` for the empty set
    /// (which is dimension-polymorphic).
    pub fn dim(&self) -> Option<usize> {
        self.parts.first().map(|l| l.dim())
    }

    /// The size metric `Σᵢ (|Vᵢ| + 1)` of §5.3.
    pub fn size(&self) -> usize {
        self.parts.iter().map(|l| l.size()).sum()
    }

    /// `⊕`: set union.
    pub fn combine(&self, other: &SemiLinearSet) -> SemiLinearSet {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        SemiLinearSet::from_linear_sets(self.parts.iter().chain(&other.parts).cloned())
    }

    /// `⊗`: Minkowski sum, `{a + b | a ∈ self, b ∈ other}`.
    pub fn extend(&self, other: &SemiLinearSet) -> SemiLinearSet {
        if self.is_zero() || other.is_zero() {
            return SemiLinearSet::zero();
        }
        SemiLinearSet::from_linear_sets(
            self.parts
                .iter()
                .flat_map(|a| other.parts.iter().map(move |b| a.extend(b))),
        )
    }

    /// `⊛`: iterated addition `⊕ᵢ selfⁱ` (Eqn. (20)):
    /// `({⟨uᵢ,Vᵢ⟩}ᵢ)⊛ = {⟨0⃗, ⋃ᵢ({uᵢ} ∪ Vᵢ)⟩}`.
    pub fn star(&self) -> SemiLinearSet {
        let Some(dim) = self.dim() else {
            // 0⊛ = 1, but with no dimension information we return a
            // dimension-polymorphic 1 lazily: the empty sum is the zero
            // vector, so star of the empty set is {0⃗}. Callers always star
            // non-empty sets; we keep a 0-dimensional 1 as a safe default.
            return SemiLinearSet::one(0);
        };
        let mut gens: Vec<IntVec> = Vec::new();
        for l in &self.parts {
            gens.push(l.base().clone());
            gens.extend(l.generators().iter().cloned());
        }
        SemiLinearSet::from_linear_sets([LinearSet::new(IntVec::zeros(dim), gens)])
    }

    /// Exact membership test.
    pub fn contains(&self, target: &IntVec) -> bool {
        self.parts.iter().any(|l| l.contains(target))
    }

    /// Removes linear sets that are trivially subsumed by another linear set
    /// in the same semi-linear set (the naySL pruning optimisation of §7).
    ///
    /// The greedy sweep keeps the first representative of mutually-subsuming
    /// (i.e. equivalent) linear sets, so pruning never loses denoted vectors.
    pub fn prune(&self) -> SemiLinearSet {
        let mut keep: Vec<LinearSet> = Vec::new();
        for l in &self.parts {
            if keep.iter().any(|other| l.subsumed_by(other)) {
                continue;
            }
            keep.retain(|other| !other.subsumed_by(l));
            keep.push(l.clone());
        }
        SemiLinearSet::from_linear_sets(keep)
    }

    /// `projSL` (§6.2): projects every linear set onto the component mask.
    pub fn project(&self, mask: &[bool]) -> SemiLinearSet {
        SemiLinearSet::from_linear_sets(self.parts.iter().map(|l| l.project(mask)))
    }

    /// Enumerates members using at most `budget` total generator
    /// applications per linear set (for tests and cross-validation).
    pub fn enumerate(&self, budget: usize) -> Vec<IntVec> {
        let mut out: Vec<IntVec> = self
            .parts
            .iter()
            .flat_map(|l| l.enumerate(budget))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Semantic equality on a budgeted sample: used by property tests. Two
    /// sets are *sample-equivalent* if they agree on membership of all
    /// vectors enumerable from either side within the budget.
    pub fn sample_equivalent(&self, other: &SemiLinearSet, budget: usize) -> bool {
        self.enumerate(budget).iter().all(|v| other.contains(v))
            && other.enumerate(budget).iter().all(|v| self.contains(v))
    }
}

impl fmt::Debug for SemiLinearSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SemiLinearSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "∅");
        }
        write!(f, "{{")?;
        for (i, l) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<LinearSet> for SemiLinearSet {
    fn from_iter<T: IntoIterator<Item = LinearSet>>(iter: T) -> Self {
        SemiLinearSet::from_linear_sets(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(components: &[i64]) -> IntVec {
        IntVec::from(components.to_vec())
    }
    fn singleton(components: &[i64]) -> SemiLinearSet {
        SemiLinearSet::singleton(v(components))
    }

    #[test]
    fn identities() {
        let a = singleton(&[1, 2]);
        assert_eq!(a.combine(&SemiLinearSet::zero()), a);
        assert_eq!(SemiLinearSet::zero().combine(&a), a);
        assert_eq!(a.extend(&SemiLinearSet::one(2)), a);
        assert_eq!(SemiLinearSet::one(2).extend(&a), a);
        assert_eq!(a.extend(&SemiLinearSet::zero()), SemiLinearSet::zero());
    }

    #[test]
    fn combine_is_idempotent_and_commutative() {
        let a = singleton(&[1]);
        let b = singleton(&[2]);
        assert_eq!(a.combine(&a), a);
        assert_eq!(a.combine(&b), b.combine(&a));
    }

    #[test]
    fn extend_is_commutative() {
        let a = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[1]), vec![v(&[2])])]);
        let b = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[5]), vec![v(&[7])])]);
        assert_eq!(a.extend(&b), b.extend(&a));
    }

    #[test]
    fn distributivity_on_examples() {
        let a = singleton(&[1]);
        let b = singleton(&[2]);
        let c = singleton(&[10]);
        let lhs = c.extend(&a.combine(&b));
        let rhs = c.extend(&a).combine(&c.extend(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn star_footnote_three() {
        // {3}⊛ ⊗ {0} = {0 + 3λ}
        let three = singleton(&[3]);
        let sol = three.star().extend(&singleton(&[0]));
        assert_eq!(sol.linear_sets().len(), 1);
        assert!(sol.contains(&v(&[0])));
        assert!(sol.contains(&v(&[3])));
        assert!(sol.contains(&v(&[300])));
        assert!(!sol.contains(&v(&[2])));
    }

    #[test]
    fn example_6_1_if_then_else_pieces() {
        // sl1 = {⟨(1,2),{(3,4)}⟩}, sl2 = {⟨(5,6),{(7,8)}⟩}
        let sl1 = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[1, 2]), vec![v(&[3, 4])])]);
        let sl2 = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[5, 6]), vec![v(&[7, 8])])]);
        // projections for b = (t,f)
        let p1 = sl1.project(&[true, false]);
        let p2 = sl2.project(&[false, true]);
        let ite_tf = p1.extend(&p2);
        assert_eq!(
            ite_tf.linear_sets(),
            &[LinearSet::new(v(&[1, 6]), vec![v(&[3, 0]), v(&[0, 8])])]
        );
    }

    #[test]
    fn pruning_removes_subsumed() {
        let big = LinearSet::new(v(&[0]), vec![v(&[3])]);
        let small = LinearSet::new(v(&[3]), vec![v(&[3])]);
        let s = SemiLinearSet::from_linear_sets([big.clone(), small]);
        let pruned = s.prune();
        assert_eq!(pruned.linear_sets(), &[big]);
    }

    #[test]
    fn enumeration_and_membership_agree() {
        let s = SemiLinearSet::from_linear_sets([
            LinearSet::new(v(&[0, 0]), vec![v(&[2, 4])]),
            LinearSet::new(v(&[1, 1]), vec![v(&[3, 6])]),
        ]);
        for m in s.enumerate(4) {
            assert!(s.contains(&m));
        }
        assert!(!s.contains(&v(&[1, 0])));
    }

    #[test]
    fn size_metric() {
        let s = SemiLinearSet::from_linear_sets([
            LinearSet::new(v(&[0]), vec![v(&[1]), v(&[2])]),
            LinearSet::new(v(&[5]), vec![]),
        ]);
        assert_eq!(s.size(), 4);
    }
}
