//! The daemon: socket accept loop, admission control, deadline
//! enforcement, and the warm solve path.
//!
//! One [`Server`] owns
//!
//! * a persistent [`WarmPool`] of engine workers — engines run warm
//!   across requests instead of cold-starting a process per verdict,
//! * a bounded, collision-safe [`VerdictCache`] keyed by
//!   [`sygus::Problem::fingerprint`],
//! * a single deadline-monitor thread that trips each request's
//!   [`Cancel`] token when its deadline expires, and
//! * one handler thread per client connection, each multiplexing
//!   requests sequentially over its socket.
//!
//! A solve request flows: decode frame → parse problem → canonical
//! print and fingerprint → cache lookup (byte-identical canonical form
//! required) → admission check against the pool's in-flight bound →
//! race on the warm pool via [`Portfolio::race_on_pool`] with the
//! request's cancel token registered at `now + deadline` → definitive
//! verdicts are inserted into the cache and served; a deadline expiry
//! cancels both engines cooperatively and returns a `timeout` response
//! — the connection is never left hanging.

use crate::cache::{CacheStats, CachedVerdict, VerdictCache};
use crate::protocol::{
    fingerprint_hex, read_frame, write_frame, ErrorCode, FrameError, Op, Request, Response,
    ResponseStatus, StatsSnapshot, DEFAULT_MAX_FRAME_BYTES,
};
use obs::names;
use portfolio::{Portfolio, SolveVerdict};
use runner::{measure, Cancel, DeadlineTimer, Json, WarmPool};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// A TCP address in `host:port` form; port 0 picks a free port.
    Tcp(String),
    /// A Unix-domain socket path; a stale socket file is removed first.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A connectable endpoint: what [`Server::endpoint`] reports after
/// binding (the TCP variant carries the *resolved* address, so binding
/// port 0 yields the actual port).
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A resolved TCP address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// The daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Where to listen.
    pub bind: Bind,
    /// Warm engine workers. A race consumes two (one per engine), so
    /// `slots / 2` races run truly concurrently; further races queue
    /// FIFO. Default 4.
    pub slots: usize,
    /// Admission bound: a solve request arriving while this many engine
    /// jobs are in flight (queued + running) is shed with an
    /// `overloaded` error instead of growing the queue without bound.
    /// Default 64.
    pub max_in_flight: usize,
    /// Verdict-cache capacity (entries); 0 disables caching. Default 4096.
    pub cache_capacity: usize,
    /// Deadline applied to solve requests that do not carry their own
    /// `deadline_ms`. Default 600 s, matching
    /// `bench::DEFAULT_SOLVE_TIMEOUT`.
    pub default_deadline: Duration,
    /// Ceiling on one frame's payload size.
    pub max_frame_bytes: usize,
    /// Whether races run the static presolve stage (requests can opt out
    /// individually via `no_presolve`). Default true.
    pub presolve: bool,
    /// When set, a plain-HTTP scrape listener binds this TCP address
    /// (`host:port`, port 0 picks a free port) and answers every GET with
    /// the metrics registry in Prometheus text format. Default off.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".into()),
            slots: 4,
            max_in_flight: 64,
            cache_capacity: 4096,
            default_deadline: Duration::from_secs(600),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            presolve: true,
            metrics_addr: None,
        }
    }
}

/// The daemon's instruments, all registered in one per-instance
/// [`obs::Registry`] (per-instance rather than [`obs::global`] so
/// concurrent daemons — e.g. parallel tests — never see each other's
/// counters). Cache counters are mirrors: the [`VerdictCache`] owns its
/// statistics, and [`Metrics::sync_cache`] copies them into the
/// registered handles before any exposition.
struct Metrics {
    registry: obs::Registry,
    requests: obs::Counter,
    errors: obs::Counter,
    timeouts: obs::Counter,
    shed: obs::Counter,
    inflight: obs::Gauge,
    cache_hits: obs::Counter,
    cache_misses: obs::Counter,
    cache_collisions: obs::Counter,
    cache_evictions: obs::Counter,
    cache_insertions: obs::Counter,
    cache_entries: obs::Gauge,
    request_seconds: obs::Histogram,
    parse_seconds: obs::Histogram,
    presolve_seconds: obs::Histogram,
    race_seconds: obs::Histogram,
}

impl Metrics {
    /// Creates every instrument, wiring in the handles owned by the pool
    /// and the deadline timer so the registry exposes them too.
    fn new(pool: &WarmPool, deadlines: &DeadlineTimer) -> Metrics {
        let registry = obs::Registry::new();
        let metrics = Metrics {
            requests: registry.counter(names::REQUESTS_TOTAL, "Total requests dispatched"),
            errors: registry.counter(names::ERRORS_TOTAL, "Requests answered with an error"),
            timeouts: registry.counter(names::TIMEOUTS_TOTAL, "Solve requests past their deadline"),
            shed: registry.counter(
                names::SHED_TOTAL,
                "Solve requests shed by admission control",
            ),
            inflight: registry.gauge(names::INFLIGHT_REQUESTS, "Solve requests being served"),
            cache_hits: registry.counter(names::CACHE_HITS_TOTAL, "Verdict-cache hits"),
            cache_misses: registry.counter(names::CACHE_MISSES_TOTAL, "Verdict-cache misses"),
            cache_collisions: registry.counter(
                names::CACHE_COLLISIONS_TOTAL,
                "Fingerprint collisions served as misses",
            ),
            cache_evictions: registry
                .counter(names::CACHE_EVICTIONS_TOTAL, "Verdict-cache LRU evictions"),
            cache_insertions: registry
                .counter(names::CACHE_INSERTIONS_TOTAL, "Verdict-cache insertions"),
            cache_entries: registry.gauge(names::CACHE_ENTRIES, "Verdict-cache resident entries"),
            request_seconds: registry.histogram(names::REQUEST_SECONDS, "End-to-end solve latency"),
            parse_seconds: registry.histogram(names::PARSE_SECONDS, "SyGuS-IF parse latency"),
            presolve_seconds: registry
                .histogram(names::PRESOLVE_SECONDS, "Static-presolve latency"),
            race_seconds: registry.histogram(
                names::RACE_SECONDS,
                "Engine-race latency (excluding presolve)",
            ),
            registry,
        };
        metrics.registry.register_counter(
            names::DEADLINE_TRIPS_TOTAL,
            "Deadline-timer cancellations fired",
            deadlines.trip_counter(),
        );
        metrics.registry.register_gauge(
            names::POOL_IN_FLIGHT,
            "Warm-pool jobs admitted and not yet finished",
            pool.in_flight_gauge(),
        );
        metrics.registry.register_gauge(
            names::POOL_QUEUE_DEPTH,
            "Warm-pool jobs queued and not yet started",
            pool.queue_depth_gauge(),
        );
        let workers = metrics
            .registry
            .gauge(names::POOL_WORKERS, "Warm-pool worker threads");
        workers.set(pool.workers() as i64);
        metrics.registry.register_histogram(
            names::QUEUE_WAIT_SECONDS,
            "Warm-pool queue wait before an engine job starts",
            pool.queue_wait_hist(),
        );
        metrics
    }

    /// Copies the cache-owned statistics into the mirror handles.
    fn sync_cache(&self, stats: CacheStats, entries: u64) {
        self.cache_hits.set(stats.hits);
        self.cache_misses.set(stats.misses);
        self.cache_collisions.set(stats.collisions);
        self.cache_evictions.set(stats.evictions);
        self.cache_insertions.set(stats.insertions);
        self.cache_entries.set(entries as i64);
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    pool: WarmPool,
    cache: Mutex<VerdictCache>,
    metrics: Metrics,
    deadlines: DeadlineTimer,
    shutdown: AtomicBool,
    endpoint: Endpoint,
    metrics_endpoint: Option<SocketAddr>,
    max_in_flight: usize,
    default_deadline: Duration,
    max_frame_bytes: usize,
    presolve: bool,
}

impl Shared {
    /// Wakes the accept loop by connecting to the daemon's own endpoint
    /// (the accepted connection immediately sees EOF and is dropped).
    fn wake_accept_loop(&self) {
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let (cache_stats, cache_entries) = {
            let cache = self.cache.lock().unwrap();
            (cache.stats(), cache.len() as u64)
        };
        self.metrics.sync_cache(cache_stats, cache_entries);
        let queue_wait = self.pool.queue_wait_hist().snapshot();
        StatsSnapshot {
            requests: self.metrics.requests.get(),
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            cache_collisions: cache_stats.collisions,
            cache_evictions: cache_stats.evictions,
            cache_insertions: cache_stats.insertions,
            cache_entries,
            timeouts: self.metrics.timeouts.get(),
            deadline_trips: self.deadlines.trip_counter().get(),
            errors: self.metrics.errors.get(),
            shed: self.metrics.shed.get(),
            in_flight: self.pool.in_flight() as u64,
            queue_depth: self.pool.queue_depth() as u64,
            workers: self.pool.workers() as u64,
            queue_wait_p50_ms: queue_wait.quantile_millis(0.50),
            queue_wait_p99_ms: queue_wait.quantile_millis(0.99),
        }
    }

    /// The full registry in Prometheus text format, cache mirrors synced.
    fn render_metrics(&self) -> String {
        let (cache_stats, cache_entries) = {
            let cache = self.cache.lock().unwrap();
            (cache.stats(), cache.len() as u64)
        };
        self.metrics.sync_cache(cache_stats, cache_entries);
        self.metrics.registry.render()
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The warm-engine daemon; see the [module docs](self).
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket and spins up the warm pool and the
    /// deadline monitor. The daemon serves nothing until [`Server::run`].
    ///
    /// # Errors
    /// Propagates socket bind errors (address in use, bad address, …).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let (listener, endpoint) = match &config.bind {
            Bind::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let endpoint = Endpoint::Tcp(listener.local_addr()?);
                (Listener::Tcp(listener), endpoint)
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a crashed daemon would fail the
                // bind; remove it. (A *live* daemon also leaves a file —
                // callers wanting exclusivity should pick unique paths.)
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                (Listener::Unix(listener), Endpoint::Unix(path.clone()))
            }
        };
        let scrape_listener = match &config.metrics_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let pool = WarmPool::new(config.slots);
        let deadlines = DeadlineTimer::new();
        let metrics = Metrics::new(&pool, &deadlines);
        let shared = Arc::new(Shared {
            pool,
            cache: Mutex::new(VerdictCache::new(config.cache_capacity)),
            metrics,
            deadlines,
            shutdown: AtomicBool::new(false),
            endpoint,
            metrics_endpoint: scrape_listener.as_ref().and_then(|l| l.local_addr().ok()),
            max_in_flight: config.max_in_flight,
            default_deadline: config.default_deadline,
            max_frame_bytes: config.max_frame_bytes,
            presolve: config.presolve,
        });
        if let Some(listener) = scrape_listener {
            spawn_scrape_listener(listener, Arc::clone(&shared));
        }
        Ok(Server { listener, shared })
    }

    /// The endpoint clients connect to (with the resolved TCP port).
    pub fn endpoint(&self) -> Endpoint {
        self.shared.endpoint.clone()
    }

    /// The resolved address of the HTTP scrape listener, when
    /// [`ServerConfig::metrics_addr`] was set.
    pub fn metrics_endpoint(&self) -> Option<SocketAddr> {
        self.shared.metrics_endpoint
    }

    /// Serves connections until a `shutdown` request arrives, then
    /// returns the final counters. Each connection gets its own handler
    /// thread; handlers of connections still open at shutdown keep
    /// serving in-flight requests and exit when their client disconnects.
    ///
    /// # Errors
    /// Propagates fatal accept-loop errors (per-connection I/O errors
    /// only close that connection).
    pub fn run(self) -> io::Result<StatsSnapshot> {
        let shared = self.shared;
        match self.listener {
            Listener::Tcp(listener) => {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // A frame is written as header + payload: without
                    // nodelay, Nagle holds the payload for the delayed
                    // ACK and every response eats ~40ms on loopback.
                    let _ = stream.set_nodelay(true);
                    spawn_handler(stream, Arc::clone(&shared));
                }
            }
            #[cfg(unix)]
            Listener::Unix(listener) => {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    spawn_handler(stream, Arc::clone(&shared));
                }
                if let Endpoint::Unix(path) = &shared.endpoint {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        Ok(shared.snapshot())
    }
}

/// The plain-HTTP scrape listener: one detached thread polling a
/// non-blocking accept loop (50 ms idle tick, so it notices daemon
/// shutdown promptly), answering every GET with the full registry in
/// Prometheus text exposition format and closing the connection. The
/// request itself is read and discarded — every path scrapes the same
/// document, which is all Prometheus needs.
fn spawn_scrape_listener(listener: TcpListener, shared: Arc<Shared>) {
    let _ = std::thread::Builder::new()
        .name("metrics-scrape".into())
        .spawn(move || loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    // Drain (up to) one request's worth of header bytes so
                    // the peer's send buffer is consumed before we answer.
                    let mut discard = [0u8; 4096];
                    let _ = stream.read(&mut discard);
                    let body = shared.render_metrics();
                    let response = format!(
                        "HTTP/1.1 200 OK\r\n\
                         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                         Content-Length: {}\r\n\
                         Connection: close\r\n\r\n{body}",
                        body.len()
                    );
                    let _ = stream.write_all(response.as_bytes());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        });
}

fn spawn_handler<S: Read + Write + Send + 'static>(stream: S, shared: Arc<Shared>) {
    // Handler threads are detached: they exit on client EOF, and at
    // process exit. `run` does not join them — a handler blocked on a
    // silent client must not wedge shutdown.
    let _ = std::thread::Builder::new()
        .name("serve-conn".into())
        .spawn(move || handle_connection(stream, &shared));
}

fn handle_connection<S: Read + Write>(mut stream: S, shared: &Arc<Shared>) {
    loop {
        match read_frame(&mut stream, shared.max_frame_bytes) {
            Ok(None) => return,
            Ok(Some(payload)) => {
                let response = dispatch(&payload, shared);
                let text = response.to_json().to_string_pretty();
                let written = write_frame(&mut stream, text.as_bytes());
                // Wake the accept loop only after the response frame is
                // on the wire: a `shutdown` requester must see its ack
                // before the daemon process can exit.
                if shared.shutdown.load(Ordering::Acquire) {
                    shared.wake_accept_loop();
                }
                if written.is_err() {
                    return;
                }
            }
            Err(FrameError::TooLarge(len)) => {
                // The oversized payload was never read, so the stream
                // cannot be resynchronized: answer and close.
                shared.metrics.errors.inc();
                let response = Response::error(
                    "",
                    ErrorCode::FrameTooLarge,
                    format!(
                        "frame of {len} bytes exceeds the {} byte ceiling",
                        shared.max_frame_bytes
                    ),
                );
                let text = response.to_json().to_string_pretty();
                let _ = write_frame(&mut stream, text.as_bytes());
                return;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

fn dispatch(payload: &[u8], shared: &Arc<Shared>) -> Response {
    // Every request gets a trace id, stamped on the response at the
    // single exit point below so any answer — including malformed-input
    // errors — can be correlated with server-side telemetry.
    let trace_id = obs::fresh_trace_id();
    let mut response = dispatch_inner(payload, shared, &trace_id);
    response.trace_id = Some(trace_id);
    response
}

fn dispatch_inner(payload: &[u8], shared: &Arc<Shared>, trace_id: &str) -> Response {
    shared.metrics.requests.inc();
    let error = |code, detail: String| {
        shared.metrics.errors.inc();
        Response::error("", code, detail)
    };
    let text = match std::str::from_utf8(payload) {
        Ok(text) => text,
        Err(e) => {
            return error(
                ErrorCode::MalformedJson,
                format!("payload is not UTF-8: {e}"),
            )
        }
    };
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(e) => return error(ErrorCode::MalformedJson, e.to_string()),
    };
    let request = match Request::from_json(&json) {
        Ok(request) => request,
        Err(e) => return error(ErrorCode::MalformedRequest, e),
    };
    match request.op {
        Op::Ping => Response::ok(request.id),
        Op::Stats => {
            let mut response = Response::ok(request.id);
            response.stats = Some(shared.snapshot());
            response
        }
        Op::Metrics => {
            let mut response = Response::ok(request.id);
            response.metrics = Some(shared.render_metrics());
            response
        }
        Op::Shutdown => {
            // The connection loop wakes the accept loop *after* writing
            // this ack, so the requester always receives it.
            shared.shutdown.store(true, Ordering::Release);
            Response::ok(request.id)
        }
        Op::Solve => {
            let started = Instant::now();
            shared.metrics.inflight.inc();
            let response = handle_solve(request, shared, trace_id);
            shared.metrics.inflight.dec();
            shared.metrics.request_seconds.observe(started.elapsed());
            response
        }
    }
}

fn handle_solve(request: Request, shared: &Arc<Shared>, trace_id: &str) -> Response {
    let started = Instant::now();
    let id = request.id.clone();
    let fail = |code, detail: String| {
        shared.metrics.errors.inc();
        Response::error(id.clone(), code, detail)
    };
    if shared.shutdown.load(Ordering::Acquire) {
        return fail(
            ErrorCode::ShuttingDown,
            "the daemon is shutting down".into(),
        );
    }
    let text = request.problem.as_deref().expect("validated by from_json");
    let (parsed, parse_elapsed) = measure(|| sygus::parser::parse_problem(text, "request"));
    shared.metrics.parse_seconds.observe(parse_elapsed);
    let parse_millis = parse_elapsed.as_secs_f64() * 1000.0;
    let problem = match parsed {
        Ok(problem) => problem,
        Err(sygus::SygusError::ParseError(p)) => {
            return fail(
                ErrorCode::ParseError,
                format!("{}:{}: {}", p.line, p.col, p.msg),
            )
        }
        Err(other) => return fail(ErrorCode::ParseError, other.to_string()),
    };
    let canonical = sygus::parser::problem_to_sygus(&problem, "f");
    let fingerprint = problem.fingerprint();

    let mut cache_millis = None;
    if !request.no_cache {
        let (hit, cache_elapsed) =
            measure(|| shared.cache.lock().unwrap().lookup(fingerprint, &canonical));
        cache_millis = Some(cache_elapsed.as_secs_f64() * 1000.0);
        if let Some(cached) = hit {
            let mut response = Response::ok(id);
            response.verdict = Some(cached.verdict);
            response.winner = cached.winner;
            response.cached = true;
            response.fingerprint = Some(fingerprint_hex(fingerprint));
            response.millis = started.elapsed().as_secs_f64() * 1000.0;
            if request.trace {
                // A hit never reaches presolve or the race: the trace is
                // just parse + the cache lookup under the root.
                let mut trace = obs::Trace::new(trace_id);
                let us = |millis: f64| (millis * 1000.0).max(0.0) as u64;
                let parse_us = us(parse_millis);
                let cache_us = us(cache_millis.unwrap_or(0.0));
                trace.push(
                    obs::trace::phase::SOLVE,
                    0,
                    0,
                    parse_us + cache_us,
                    "cache hit",
                );
                trace.push(obs::trace::phase::PARSE, 1, 0, parse_us, "");
                trace.push(obs::trace::phase::CACHE, 1, parse_us, cache_us, "hit");
                response.trace = Some(trace);
            }
            return response;
        }
    }

    // Admission control: shed rather than queue without bound.
    if shared.pool.in_flight() >= shared.max_in_flight {
        shared.metrics.shed.inc();
        shared.metrics.errors.inc();
        return Response::error(
            id,
            ErrorCode::Overloaded,
            format!(
                "{} engine jobs in flight (bound {})",
                shared.pool.in_flight(),
                shared.max_in_flight
            ),
        );
    }

    let deadline = request
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.default_deadline);
    let cancel = Cancel::new();
    // The guard is held across the race: a request that finishes early
    // retires its registration, so only genuine expiries count as trips.
    let remaining = deadline.saturating_sub(started.elapsed());
    let deadline_guard = shared.deadlines.register(&cancel, remaining);

    let portfolio = Portfolio::new().with_presolve(shared.presolve && !request.no_presolve);
    let report = portfolio.race_on_pool(&problem, &shared.pool, &cancel);
    drop(deadline_guard);
    let millis = started.elapsed().as_secs_f64() * 1000.0;

    if let Some(presolve) = &report.presolve {
        shared
            .metrics
            .presolve_seconds
            .observe_millis(presolve.millis);
    }
    if report.winner != Some("presolve") {
        shared
            .metrics
            .race_seconds
            .observe_millis(report.wall_millis);
    }
    let trace = request
        .trace
        .then(|| report.trace_with(trace_id, parse_millis, cache_millis));

    if report.verdict.is_definitive() {
        if !request.no_cache {
            shared.cache.lock().unwrap().insert(
                fingerprint,
                canonical,
                CachedVerdict {
                    verdict: report.verdict.name().into(),
                    winner: report.winner.map(str::to_string),
                    solve_millis: report.wall_millis,
                },
            );
        }
        let mut response = Response::ok(id);
        response.verdict = Some(report.verdict.name().into());
        response.winner = report.winner.map(str::to_string);
        response.fingerprint = Some(fingerprint_hex(fingerprint));
        response.millis = millis;
        response.trace = trace;
        return response;
    }

    // Not definitive. A tripped token means the deadline timer fired
    // (winners only trip the token alongside a definitive verdict).
    if cancel.is_cancelled() {
        shared.metrics.timeouts.inc();
        let mut response = Response::ok(id);
        response.status = ResponseStatus::Timeout;
        response.verdict = Some(SolveVerdict::Unknown.name().into());
        response.fingerprint = Some(fingerprint_hex(fingerprint));
        response.millis = millis;
        response.trace = trace;
        return response;
    }

    // A crashed engine with no verdict is an internal error; a clean
    // double-unknown is a genuine (budget-independent) `unknown`.
    if report.nay.status != runner::JobStatus::Ok || report.nope.status != runner::JobStatus::Ok {
        return fail(
            ErrorCode::Internal,
            format!(
                "engine jobs ended {} / {}",
                report.nay.status.as_str(),
                report.nope.status.as_str()
            ),
        );
    }
    let mut response = Response::ok(id);
    response.verdict = Some(SolveVerdict::Unknown.name().into());
    response.fingerprint = Some(fingerprint_hex(fingerprint));
    response.millis = millis;
    response.trace = trace;
    response
}
