//! SyGuS problems `sy = (ψ, G)` (Def. 3.2).

use crate::example::{Example, ExampleSet};
use crate::grammar::Grammar;
use crate::spec::Spec;
use crate::term::Term;
use crate::SygusError;
use std::fmt;

/// A syntax-guided synthesis problem: a behavioral specification `ψ` and a
/// regular tree grammar `G` describing the search space (Def. 3.2).
///
/// The example-restricted problem `sy_E` (Def. 3.4) is represented by a
/// [`Problem`] paired with an [`ExampleSet`]; see
/// [`Problem::satisfied_on_examples`].
///
/// # Example
/// ```
/// use sygus::{GrammarBuilder, Problem, Sort, Spec, Symbol, Term, ExampleSet};
/// use logic::{LinearExpr, Var};
///
/// let grammar = GrammarBuilder::new("Start")
///     .nonterminal("Start", Sort::Int)
///     .production("Start", Symbol::Num(0), &[])
///     .production("Start", Symbol::Plus, &["Start", "Start"])
///     .build().unwrap();
/// let spec = Spec::output_equals(
///     LinearExpr::var(Var::new("x")).scale(2),
///     vec!["x".to_string()],
/// );
/// let problem = Problem::new("double", grammar, spec);
/// let examples = ExampleSet::for_single_var("x", [3]);
/// // Num(0) is not correct on x = 3 (expected 6)
/// assert!(!problem.satisfied_on_examples(&Term::num(0), &examples).unwrap());
/// ```
#[derive(Clone)]
pub struct Problem {
    name: String,
    grammar: Grammar,
    spec: Spec,
}

impl Problem {
    /// Creates a named SyGuS problem.
    pub fn new(name: impl Into<String>, grammar: Grammar, spec: Spec) -> Self {
        Problem {
            name: name.into(),
            grammar,
            spec,
        }
    }

    /// The problem's name (benchmark identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The search-space grammar `G`.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The behavioral specification `ψ`.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Replaces the grammar (used by benchmark generators that derive
    /// "limited" variants from a base problem).
    pub fn with_grammar(mut self, grammar: Grammar) -> Self {
        self.grammar = grammar;
        self
    }

    /// Renames the problem.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// A stable 64-bit fingerprint of the problem's *content*: an FNV-1a
    /// hash over the canonical SyGuS-IF printed form
    /// ([`crate::parser::problem_to_sygus`] with a fixed function name).
    ///
    /// Two problems fingerprint equal iff they print identically, so the
    /// fingerprint ignores the benchmark [`name`](Problem::name) and all
    /// parser-normalized detail (chain productions, `≠` atoms) — exactly
    /// the equivalence a generated-instance deduplicator wants. The value
    /// is stable across processes and platforms (no pointer or `HashMap`
    /// order dependence: the printer walks declaration-ordered data).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let text = crate::parser::problem_to_sygus(self, "f");
        let mut hash = FNV_OFFSET;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// `true` iff the candidate term satisfies the specification on every
    /// example of `E`, i.e. whether the term is a solution of `sy_E`
    /// (Def. 3.4).
    ///
    /// # Errors
    /// Propagates evaluation errors (e.g. unbound input variables).
    pub fn satisfied_on_examples(
        &self,
        candidate: &Term,
        examples: &ExampleSet,
    ) -> Result<bool, SygusError> {
        for e in examples.iter() {
            let value = candidate.eval(e)?;
            if !self.spec.holds_value(e, value) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The first example of `E` on which the candidate violates the
    /// specification, if any.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn first_violation(
        &self,
        candidate: &Term,
        examples: &ExampleSet,
    ) -> Result<Option<Example>, SygusError> {
        for e in examples.iter() {
            let value = candidate.eval(e)?;
            if !self.spec.holds_value(e, value) {
                return Ok(Some(e.clone()));
            }
        }
        Ok(None)
    }
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SyGuS problem {}", self.name)?;
        writeln!(f, "  spec: {}", self.spec)?;
        write!(f, "  grammar:\n{}", self.grammar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;
    use crate::term::{Sort, Symbol};
    use logic::{LinearExpr, Var};

    fn problem() -> Problem {
        // Grammar G1 of §2 and spec f(x) = 2x + 2
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        );
        Problem::new("section2-lia", grammar, spec)
    }

    #[test]
    fn candidate_evaluation() {
        let p = problem();
        let examples = ExampleSet::for_single_var("x", [1]);
        // Num(0) produces 0 ≠ 4
        assert!(!p.satisfied_on_examples(&Term::num(0), &examples).unwrap());
        assert!(p
            .first_violation(&Term::num(0), &examples)
            .unwrap()
            .is_some());
    }

    #[test]
    fn accessors() {
        let p = problem();
        assert_eq!(p.name(), "section2-lia");
        assert_eq!(p.grammar().num_nonterminals(), 4);
        let renamed = p.clone().with_name("other");
        assert_eq!(renamed.name(), "other");
    }

    #[test]
    fn fingerprint_ignores_the_name_but_not_the_content() {
        let p = problem();
        let renamed = p.clone().with_name("something-else");
        assert_eq!(p.fingerprint(), renamed.fingerprint());

        // Changing the spec changes the fingerprint.
        let other_spec = Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(3),
            vec!["x".to_string()],
        );
        let different = Problem::new("section2-lia", p.grammar().clone(), other_spec);
        assert_ne!(p.fingerprint(), different.fingerprint());

        // Changing the grammar changes the fingerprint.
        let smaller = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Num(0), &[])
            .build()
            .unwrap();
        let trimmed = p.clone().with_grammar(smaller);
        assert_ne!(p.fingerprint(), trimmed.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_calls_and_clones() {
        let p = problem();
        let first = p.fingerprint();
        assert_eq!(first, p.fingerprint());
        assert_eq!(first, p.clone().fingerprint());
        // The fingerprint is a function of the printed form only: a
        // problem rebuilt from its own printed text fingerprints equal.
        let printed = crate::parser::problem_to_sygus(&p, "f");
        let reparsed = crate::parser::parse_problem(&printed, "reparsed").unwrap();
        assert_eq!(first, reparsed.fingerprint());
    }

    #[test]
    fn empty_example_set_is_trivially_satisfied() {
        let p = problem();
        assert!(p
            .satisfied_on_examples(&Term::num(0), &ExampleSet::new())
            .unwrap());
    }
}
