//! Adapters giving both solvers a common "attack a bare SyGuS problem"
//! interface with cooperative cancellation.
//!
//! `nay` already is such an engine: its CEGIS loop generates its own
//! examples. `nope` is only a *checker* of example-restricted problems, so
//! [`NopeEngine`] wraps it in the same outer loop Algorithm 2 uses — grow a
//! deterministic random example set until the checker proves
//! unrealizability or gives up — which is exactly how the paper's
//! evaluation drives it.

use nay::{CegisOutcome, Nay};
use nope::{NopeSolver, NopeVerdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use runner::Cancel;
use sygus::{Example, ExampleSet, Problem, Term};

/// The unified verdict vocabulary of the portfolio.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveVerdict {
    /// The SyGuS problem has no solution (either engine can prove this).
    Unrealizable,
    /// A verified solution term exists (only `nay` can prove this).
    Realizable,
    /// The engine exhausted its budget without a definitive answer.
    Unknown,
    /// The engine observed a tripped [`Cancel`] token and aborted.
    Cancelled,
}

impl SolveVerdict {
    /// Stable lower-case name used by the JSON report
    /// (`unrealizable`, `realizable`, `unknown`, `cancelled`).
    pub fn name(&self) -> &'static str {
        match self {
            SolveVerdict::Unrealizable => "unrealizable",
            SolveVerdict::Realizable => "realizable",
            SolveVerdict::Unknown => "unknown",
            SolveVerdict::Cancelled => "cancelled",
        }
    }

    /// `true` for the two verdicts that settle the problem and should trip
    /// the shared token in a race.
    pub fn is_definitive(&self) -> bool {
        matches!(self, SolveVerdict::Unrealizable | SolveVerdict::Realizable)
    }
}

/// What one engine produced on one problem (timing lives in the racer; the
/// adapters are pure with respect to the wall clock, like `bench`'s
/// evaluation functions).
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// Engine name (`nay` or `nope`).
    pub engine: &'static str,
    /// The engine's verdict.
    pub verdict: SolveVerdict,
    /// Solver iterations: CEGIS iterations for `nay`, cumulative abstract
    /// fixpoint iterations for `nope`.
    pub iterations: u64,
    /// The number of examples the engine ended with.
    pub examples_used: usize,
    /// Peak term-arena size of the run: distinct terms interned by the
    /// engine's hot path (nay's CEGIS-wide candidate arena; the largest
    /// bounded-search arena across nope's rounds).
    pub arena_terms: usize,
    /// The verified solution term, when `verdict` is `Realizable`.
    pub solution: Option<Term>,
}

/// Runs the `nay` CEGIS engine under a cancellation token.
pub fn solve_nay(problem: &Problem, cancel: &Cancel, nay: &Nay) -> EngineOutcome {
    let (outcome, stats) = nay.run_cancellable(problem, cancel);
    let (verdict, solution) = match outcome {
        CegisOutcome::Unrealizable => (SolveVerdict::Unrealizable, None),
        CegisOutcome::Solution(term) => (SolveVerdict::Realizable, Some(term)),
        CegisOutcome::Unknown => (SolveVerdict::Unknown, None),
        CegisOutcome::Cancelled => (SolveVerdict::Cancelled, None),
    };
    EngineOutcome {
        engine: "nay",
        verdict,
        iterations: stats.cegis_iterations as u64,
        examples_used: stats.num_examples,
        arena_terms: stats.arena_terms,
        solution,
    }
}

/// The example-growing outer loop around the `nope` checker.
///
/// Each round checks the current example set; *realizable on these
/// examples* means the examples are not yet constraining enough, so a fresh
/// deterministic random example is added and the next round starts.
/// `nope` can never prove full realizability, so its definitive verdict is
/// only ever [`SolveVerdict::Unrealizable`].
#[derive(Clone, Debug)]
pub struct NopeEngine {
    solver: NopeSolver,
    max_rounds: usize,
    random_range: (i64, i64),
    seed: u64,
}

impl Default for NopeEngine {
    fn default() -> Self {
        NopeEngine {
            solver: NopeSolver::new(),
            // matches nay's defaults: a handful of rounds over [-50, 50]
            max_rounds: 12,
            random_range: (-50, 50),
            seed: 0xC0FFEE,
        }
    }
}

impl NopeEngine {
    /// Creates an engine with the default budgets.
    pub fn new() -> Self {
        NopeEngine::default()
    }

    /// Replaces the underlying checker configuration.
    pub fn with_solver(mut self, solver: NopeSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the maximal number of example-growing rounds.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Sets the random seed used to draw example inputs.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn random_example(&self, problem: &Problem, rng: &mut StdRng) -> Example {
        Example::from_pairs(problem.spec().input_vars().iter().map(|x| {
            (
                x.clone(),
                rng.gen_range(self.random_range.0..=self.random_range.1),
            )
        }))
    }

    /// Runs the example-growing loop under a cancellation token.
    pub fn solve(&self, problem: &Problem, cancel: &Cancel) -> EngineOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut examples = ExampleSet::new();
        examples.push(self.random_example(problem, &mut rng));
        let mut iterations = 0u64;
        let mut arena_terms = 0usize;
        let mut verdict = SolveVerdict::Unknown;
        for _ in 0..self.max_rounds {
            if cancel.is_cancelled() {
                verdict = SolveVerdict::Cancelled;
                break;
            }
            let (round_verdict, stats) = self.solver.check_cancellable(problem, &examples, cancel);
            iterations += stats.abstract_iterations as u64;
            arena_terms = arena_terms.max(stats.arena_terms);
            match round_verdict {
                NopeVerdict::Unrealizable => {
                    verdict = SolveVerdict::Unrealizable;
                    break;
                }
                NopeVerdict::Cancelled => {
                    verdict = SolveVerdict::Cancelled;
                    break;
                }
                NopeVerdict::RealizableOnExamples(_) => {
                    // constrain harder: draw a fresh example (retrying a few
                    // times if the draw collides with an existing one)
                    let mut fresh = self.random_example(problem, &mut rng);
                    for _ in 0..8 {
                        if !examples.contains(&fresh) {
                            break;
                        }
                        fresh = self.random_example(problem, &mut rng);
                    }
                    if examples.contains(&fresh) {
                        // the input space is effectively exhausted; more
                        // examples cannot help
                        verdict = SolveVerdict::Unknown;
                        break;
                    }
                    examples.push(fresh);
                }
                NopeVerdict::Unknown => {
                    verdict = SolveVerdict::Unknown;
                    break;
                }
            }
        }
        EngineOutcome {
            engine: "nope",
            verdict,
            iterations,
            examples_used: examples.len(),
            arena_terms,
            solution: None,
        }
    }
}

/// Runs the `nope` example-growing engine under a cancellation token.
pub fn solve_nope(problem: &Problem, cancel: &Cancel, engine: &NopeEngine) -> EngineOutcome {
    engine.solve(problem, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_problems::{realizable_xplus2, section2_lia};

    #[test]
    fn nay_engine_proves_the_section2_problem() {
        let outcome = solve_nay(&section2_lia(), &Cancel::never(), &Nay::new());
        assert_eq!(outcome.verdict, SolveVerdict::Unrealizable);
        assert!(outcome.verdict.is_definitive());
        assert!(outcome.iterations >= 1);
    }

    #[test]
    fn nay_engine_finds_solutions() {
        let outcome = solve_nay(&realizable_xplus2(), &Cancel::never(), &Nay::new());
        assert_eq!(outcome.verdict, SolveVerdict::Realizable);
        assert!(outcome.solution.is_some());
    }

    #[test]
    fn nope_engine_proves_the_section2_problem() {
        let outcome = solve_nope(&section2_lia(), &Cancel::never(), &NopeEngine::new());
        assert_eq!(outcome.verdict, SolveVerdict::Unrealizable);
        assert!(outcome.examples_used >= 1);
    }

    #[test]
    fn nope_engine_cannot_prove_realizability() {
        let outcome = solve_nope(&realizable_xplus2(), &Cancel::never(), &NopeEngine::new());
        assert!(!outcome.verdict.is_definitive(), "{:?}", outcome.verdict);
    }

    #[test]
    fn both_engines_observe_a_pre_tripped_token() {
        let cancel = Cancel::new();
        cancel.cancel();
        let nay = solve_nay(&section2_lia(), &cancel, &Nay::new());
        assert_eq!(nay.verdict, SolveVerdict::Cancelled);
        assert_eq!(nay.iterations, 0, "observed within one CEGIS iteration");
        let nope = solve_nope(&section2_lia(), &cancel, &NopeEngine::new());
        assert_eq!(nope.verdict, SolveVerdict::Cancelled);
        assert_eq!(nope.iterations, 0, "observed before any fixpoint pass");
    }

    #[test]
    fn verdict_names_are_stable() {
        assert_eq!(SolveVerdict::Unrealizable.name(), "unrealizable");
        assert_eq!(SolveVerdict::Realizable.name(), "realizable");
        assert_eq!(SolveVerdict::Unknown.name(), "unknown");
        assert_eq!(SolveVerdict::Cancelled.name(), "cancelled");
    }
}
