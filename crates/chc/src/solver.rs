//! An approximate Horn solver based on abstract interpretation.
//!
//! Spacer (the Horn engine of Z3 used by the paper's `nayHorn` mode) is not
//! available offline, so the Horn query produced by [`crate::encode`] is
//! discharged with a sound over-approximation instead: a Kleene iteration
//! with widening over the interval × congruence domain of
//! [`crate::domain`] computes, for every nonterminal, a superset of the
//! output vectors its terms can produce on the examples; if that superset is
//! already inconsistent with the specification, the query is unreachable and
//! the problem is unrealizable. Like Spacer, the solver is sound but
//! incomplete — the other possible verdict is `Unknown`.

use crate::domain::{AbsBool, AbsInt, AbsValue};
use logic::{Formula, Solver, SolverResult, Var};
use std::collections::BTreeMap;
use sygus::{ExampleSet, Grammar, NonTerminal, Spec, Symbol};

/// The verdict of the approximate Horn solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HornVerdict {
    /// The query is unreachable: the SyGuS-with-examples problem is
    /// unrealizable.
    Unrealizable,
    /// The abstraction could not refute reachability.
    Unknown,
}

/// The abstract-interpretation Horn solver (nayHorn's backend).
///
/// # Example
/// ```
/// use chc::{HornSolver, HornVerdict};
/// use logic::{LinearExpr, Var};
/// use sygus::{ExampleSet, GrammarBuilder, Sort, Spec, Symbol};
///
/// // G1 of §2: only multiples of 3·x; spec f(x) = 2x + 2 with x = 1.
/// let grammar = GrammarBuilder::new("Start")
///     .nonterminal("Start", Sort::Int)
///     .nonterminal("X3", Sort::Int)
///     .nonterminal("X", Sort::Int)
///     .production("Start", Symbol::Plus, &["X3", "Start"])
///     .production("Start", Symbol::Num(0), &[])
///     .production("X3", Symbol::Plus, &["X", "X"])
///     .production("X", Symbol::Var("x".to_string()), &[])
///     .build().unwrap();
/// let spec = Spec::output_equals(
///     LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
///     vec!["x".to_string()],
/// );
/// let examples = ExampleSet::for_single_var("x", [1]);
/// // (this grammar variant produces multiples of 2, and 4 = 2·1+2 is even,
/// //  so the congruence argument alone cannot refute it)
/// let verdict = HornSolver::new().check(&grammar, &examples, &spec);
/// assert!(matches!(verdict, chc::HornVerdict::Unknown | chc::HornVerdict::Unrealizable));
/// ```
#[derive(Clone, Debug)]
pub struct HornSolver {
    max_iterations: usize,
    widening_delay: usize,
}

impl Default for HornSolver {
    fn default() -> Self {
        HornSolver {
            max_iterations: 100,
            widening_delay: 3,
        }
    }
}

impl HornSolver {
    /// Creates a solver with default iteration and widening parameters.
    pub fn new() -> Self {
        HornSolver::default()
    }

    /// Sets the maximal number of Kleene iterations.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets how many iterations run before widening kicks in.
    pub fn with_widening_delay(mut self, n: usize) -> Self {
        self.widening_delay = n;
        self
    }

    /// Computes the abstract fixed point: one [`AbsValue`] per nonterminal,
    /// over-approximating the set of output vectors producible on `examples`.
    pub fn analyze(
        &self,
        grammar: &Grammar,
        examples: &ExampleSet,
    ) -> BTreeMap<NonTerminal, AbsValue> {
        let mut values: BTreeMap<NonTerminal, AbsValue> = grammar
            .nonterminals()
            .iter()
            .map(|nt| (nt.clone(), AbsValue::Bottom))
            .collect();

        for iteration in 0..self.max_iterations {
            let mut changed = false;
            let mut next = values.clone();
            for nt in grammar.nonterminals() {
                let mut acc = AbsValue::Bottom;
                for p in grammar.productions_of(nt) {
                    let contribution = self.transfer(&p.symbol, &p.args, &values, examples);
                    if !contribution.is_bottom() {
                        acc = acc.join(&contribution);
                    }
                }
                let old = &values[nt];
                let new = if iteration >= self.widening_delay {
                    old.widen(&acc)
                } else if old.is_bottom() {
                    acc
                } else {
                    old.join(&acc)
                };
                if &new != old {
                    changed = true;
                }
                next.insert(nt.clone(), new);
            }
            values = next;
            if !changed {
                break;
            }
        }
        values
    }

    /// Checks unrealizability of the SyGuS-with-examples problem
    /// `(spec, grammar)` restricted to `examples` (the Horn query of §4.3).
    pub fn check(&self, grammar: &Grammar, examples: &ExampleSet, spec: &Spec) -> HornVerdict {
        if examples.is_empty() {
            return HornVerdict::Unknown;
        }
        let values = self.analyze(grammar, examples);
        let start = &values[grammar.start()];
        let outputs: Vec<Var> = (0..examples.len())
            .map(|j| Var::indexed("o", j + 1))
            .collect();
        let gamma = match start {
            // bottom: the start symbol derives no terms at all, so there is
            // no candidate and the problem is trivially unrealizable.
            AbsValue::Bottom => return HornVerdict::Unrealizable,
            AbsValue::Int(components) => Formula::and(
                components
                    .iter()
                    .enumerate()
                    .map(|(j, a)| a.to_formula(&outputs[j], &format!("k_{j}"))),
            ),
            AbsValue::Bool(components) => {
                Formula::and(components.iter().enumerate().map(|(j, b)| {
                    let o = logic::LinearExpr::var(outputs[j].clone());
                    match b {
                        AbsBool::True => Formula::eq(o, logic::LinearExpr::constant(1)),
                        AbsBool::False => Formula::eq(o, logic::LinearExpr::constant(0)),
                        AbsBool::Top => Formula::and(vec![
                            Formula::ge(o.clone(), logic::LinearExpr::constant(0)),
                            Formula::le(o, logic::LinearExpr::constant(1)),
                        ]),
                    }
                }))
            }
        };
        let query = Formula::and(vec![gamma, spec.conjunction_over(examples, &outputs)]);
        match Solver::default().check(&query) {
            SolverResult::Unsat => HornVerdict::Unrealizable,
            SolverResult::Sat(_) | SolverResult::Unknown => HornVerdict::Unknown,
        }
    }

    fn transfer(
        &self,
        symbol: &Symbol,
        args: &[NonTerminal],
        values: &BTreeMap<NonTerminal, AbsValue>,
        examples: &ExampleSet,
    ) -> AbsValue {
        let dim = examples.len();
        let arg_vals: Vec<&AbsValue> = args.iter().map(|a| &values[a]).collect();
        if arg_vals.iter().any(|v| v.is_bottom()) {
            return AbsValue::Bottom;
        }
        let ints = |k: usize| -> &Vec<AbsInt> {
            match arg_vals[k] {
                AbsValue::Int(v) => v,
                _ => unreachable!("sort checked by the grammar builder"),
            }
        };
        let bools = |k: usize| -> &Vec<AbsBool> {
            match arg_vals[k] {
                AbsValue::Bool(v) => v,
                _ => unreachable!("sort checked by the grammar builder"),
            }
        };
        match symbol {
            Symbol::Num(c) => AbsValue::Int(vec![AbsInt::constant(*c); dim]),
            Symbol::Var(x) => {
                let mu = examples.projection(x).unwrap_or_else(|_| vec![0; dim]);
                AbsValue::Int(mu.into_iter().map(AbsInt::constant).collect())
            }
            Symbol::NegVar(x) => {
                let mu = examples.projection(x).unwrap_or_else(|_| vec![0; dim]);
                AbsValue::Int(mu.into_iter().map(|v| AbsInt::constant(-v)).collect())
            }
            Symbol::Plus => {
                let mut acc = vec![AbsInt::constant(0); dim];
                for k in 0..args.len() {
                    for (j, cell) in acc.iter_mut().enumerate() {
                        *cell = cell.add(&ints(k)[j]);
                    }
                }
                AbsValue::Int(acc)
            }
            Symbol::Minus => AbsValue::Int(
                (0..dim)
                    .map(|j| ints(0)[j].add(&ints(1)[j].neg()))
                    .collect(),
            ),
            Symbol::IfThenElse => AbsValue::Int(
                (0..dim)
                    .map(|j| match bools(0)[j] {
                        AbsBool::True => ints(1)[j],
                        AbsBool::False => ints(2)[j],
                        AbsBool::Top => ints(1)[j].join(&ints(2)[j]),
                    })
                    .collect(),
            ),
            Symbol::LessThan => AbsValue::Bool(
                (0..dim)
                    .map(|j| AbsBool::less_than(&ints(0)[j], &ints(1)[j]))
                    .collect(),
            ),
            Symbol::Equal => AbsValue::Bool(
                (0..dim)
                    .map(|j| {
                        let (a, b) = (&ints(0)[j], &ints(1)[j]);
                        if a.interval.lo == a.interval.hi
                            && a.interval.lo.is_some()
                            && a.interval == b.interval
                            && a.congruence.modulus == 0
                            && b.congruence.modulus == 0
                        {
                            AbsBool::True
                        } else if AbsBool::less_than(a, b) == AbsBool::True
                            || AbsBool::less_than(b, a) == AbsBool::True
                        {
                            AbsBool::False
                        } else {
                            AbsBool::Top
                        }
                    })
                    .collect(),
            ),
            Symbol::And => {
                AbsValue::Bool((0..dim).map(|j| bools(0)[j].and(&bools(1)[j])).collect())
            }
            Symbol::Or => AbsValue::Bool((0..dim).map(|j| bools(0)[j].or(&bools(1)[j])).collect()),
            Symbol::Not => AbsValue::Bool((0..dim).map(|j| bools(0)[j].not()).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::LinearExpr;
    use sygus::GrammarBuilder;
    use sygus::Sort;

    /// Grammar G1 of §2 (multiples of 3x).
    fn g1() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("S1", Sort::Int)
            .nonterminal("S2", Sort::Int)
            .nonterminal("S3", Sort::Int)
            .production("Start", Symbol::Plus, &["S1", "Start"])
            .production("Start", Symbol::Num(0), &[])
            .production("S1", Symbol::Plus, &["S2", "S3"])
            .production("S2", Symbol::Plus, &["S3", "S3"])
            .production("S3", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap()
    }

    fn spec_2x_plus_2() -> Spec {
        Spec::output_equals(
            LinearExpr::var(Var::new("x")).scale(2) + LinearExpr::constant(2),
            vec!["x".to_string()],
        )
    }

    #[test]
    fn analysis_discovers_the_congruence_invariant() {
        let examples = ExampleSet::for_single_var("x", [1]);
        let values = HornSolver::new().analyze(&g1(), &examples);
        match &values[&NonTerminal::new("Start")] {
            AbsValue::Int(v) => {
                assert!(v[0].contains(0));
                assert!(v[0].contains(3));
                assert!(v[0].contains(300));
                assert!(!v[0].contains(4), "Start only produces multiples of 3");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn proves_the_section2_lia_problem_unrealizable() {
        // f(x) = 2x + 2 with x = 1 requires output 4, but the grammar only
        // produces multiples of 3 — the congruence component refutes it.
        let examples = ExampleSet::for_single_var("x", [1]);
        let verdict = HornSolver::new().check(&g1(), &examples, &spec_2x_plus_2());
        assert_eq!(verdict, HornVerdict::Unrealizable);
    }

    #[test]
    fn unknown_when_the_abstraction_is_too_coarse() {
        // Gconst (Ex. 3.8): Start ::= Plus(Start,Start) | Num(1); spec f(x) > x.
        // The abstraction [1,∞) is consistent with the spec for x = 1, so the
        // solver must answer Unknown (and indeed sy_E is realizable here).
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .build()
            .unwrap();
        let spec = Spec::new(
            Formula::gt(
                LinearExpr::var(Spec::output_var()),
                LinearExpr::var(Var::new("x")),
            ),
            vec!["x".to_string()],
            Sort::Int,
        );
        let examples = ExampleSet::for_single_var("x", [1]);
        assert_eq!(
            HornSolver::new().check(&grammar, &examples, &spec),
            HornVerdict::Unknown
        );
    }

    #[test]
    fn interval_reasoning_proves_bounded_grammars_unrealizable() {
        // Start ::= Num(1) | Num(2) | Plus(... no recursion): outputs ≤ 3,
        // spec f(x) = 10 ⇒ unrealizable by the interval component.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("A", Sort::Int)
            .production("Start", Symbol::Plus, &["A", "A"])
            .production("Start", Symbol::Num(1), &[])
            .production("A", Symbol::Num(1), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(LinearExpr::constant(10), vec!["x".to_string()]);
        let examples = ExampleSet::for_single_var("x", [0]);
        assert_eq!(
            HornSolver::new().check(&grammar, &examples, &spec),
            HornVerdict::Unrealizable
        );
    }

    #[test]
    fn clia_if_then_else_analysis() {
        // Start ::= ite(B, Num(0), Num(5)) ; B ::= x < 2. Outputs ∈ {0, 5};
        // spec f(x) = 3 is unrealizable, and provable because the interval
        // join [0,5] with congruence information... the join of constants 0
        // and 5 has modulus 5, so 3 is excluded.
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("T", Sort::Int)
            .nonterminal("E", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .nonterminal("X", Sort::Int)
            .nonterminal("Two", Sort::Int)
            .production("Start", Symbol::IfThenElse, &["B", "T", "E"])
            .production("T", Symbol::Num(0), &[])
            .production("E", Symbol::Num(5), &[])
            .production("B", Symbol::LessThan, &["X", "Two"])
            .production("X", Symbol::Var("x".to_string()), &[])
            .production("Two", Symbol::Num(2), &[])
            .build()
            .unwrap();
        let spec = Spec::output_equals(LinearExpr::constant(3), vec!["x".to_string()]);
        let examples = ExampleSet::for_single_var("x", [7]);
        // on x = 7 the guard is definitely false, so Start = 5 exactly
        assert_eq!(
            HornSolver::new().check(&grammar, &examples, &spec),
            HornVerdict::Unrealizable
        );
    }

    #[test]
    fn unproductive_start_symbol_is_unrealizable() {
        let grammar = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .build()
            .unwrap();
        let spec = spec_2x_plus_2();
        let examples = ExampleSet::for_single_var("x", [1]);
        assert_eq!(
            HornSolver::new().check(&grammar, &examples, &spec),
            HornVerdict::Unrealizable
        );
    }

    #[test]
    fn empty_example_set_gives_unknown() {
        assert_eq!(
            HornSolver::new().check(&g1(), &ExampleSet::new(), &spec_2x_plus_2()),
            HornVerdict::Unknown
        );
    }
}
