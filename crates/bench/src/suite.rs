//! The parallel benchmark suite: turns (benchmark, tool) pairs into runner
//! [`Job`]s, executes them on the work-stealing pool, and assembles the
//! schema-versioned [`Report`] the CI perf gate consumes.
//!
//! Timing lives entirely in the runner (`runner::measure` around the job
//! body); the evaluation functions in the crate root are pure. Job order —
//! and therefore entry order after the report's canonical sort — does not
//! depend on the worker count, which is what makes `--jobs 1` and
//! `--jobs 8` produce byte-identical canonicalized reports.

use crate::{eval_nay, eval_nope, select, Evaluation};
use benchmarks::{Benchmark, Family};
use nay::Mode;
use runner::{run_jobs, Entry, Job, JobResult, JobStatus, PoolConfig, Report};

/// The three tools of the evaluation, in table-column order.
pub const TOOLS: [&str; 3] = ["naySL", "nayHorn", "nope"];

/// The three benchmark families, in the order the paper's tables use.
pub const FAMILIES: [Family; 3] = [Family::LimitedPlus, Family::LimitedIf, Family::LimitedConst];

/// Runs every tool on every given benchmark through the pool and returns
/// one entry per (benchmark, tool) pair, in input order.
pub fn run_benches(benches: &[Benchmark], config: &PoolConfig) -> Vec<Entry> {
    // One (benchmark, tool) list drives both job construction and entry
    // assembly, so labels cannot drift out of sync with positions.
    let pairs: Vec<(&Benchmark, &str)> = benches
        .iter()
        .flat_map(|b| TOOLS.iter().map(move |&t| (b, t)))
        .collect();
    let jobs: Vec<Job<Evaluation>> = pairs
        .iter()
        .map(|(bench, tool)| {
            let bench = (*bench).clone();
            let tool = *tool;
            Job::new(format!("{}::{tool}", bench.name), move || match tool {
                "naySL" => eval_nay(&bench, &Mode::default()),
                "nayHorn" => eval_nay(&bench, &Mode::horn()),
                _ => eval_nope(&bench),
            })
        })
        .collect();
    let results = run_jobs(jobs, config);
    pairs
        .into_iter()
        .zip(results)
        .map(|((bench, tool), result)| entry_from(bench.name.clone(), tool.to_string(), result))
        .collect()
}

fn entry_from(benchmark: String, tool: String, result: JobResult<Evaluation>) -> Entry {
    let millis = result.elapsed.as_secs_f64() * 1000.0;
    match (result.status, result.output) {
        (JobStatus::Ok, Some(eval)) => Entry {
            benchmark,
            tool,
            status: JobStatus::Ok,
            verdict: eval.verdict.into(),
            proved: eval.proved,
            iterations: eval.iterations as u64,
            millis,
            tainted: result.tainted,
            family: String::new(),
        },
        (status, _) => Entry {
            benchmark,
            tool,
            status,
            verdict: "-".into(),
            proved: false,
            iterations: 0,
            millis,
            tainted: result.tainted,
            family: String::new(),
        },
    }
}

/// Runs one family's (quick or full) benchmarks through the pool.
pub fn run_family(family: Family, quick: bool, config: &PoolConfig) -> Vec<Entry> {
    run_benches(&select(family, quick), config)
}

/// Runs the whole table suite (all three families) and assembles the report.
pub fn run_suite(quick: bool, config: &PoolConfig) -> Report {
    let benches: Vec<Benchmark> = FAMILIES
        .iter()
        .flat_map(|&family| select(family, quick))
        .collect();
    Report::new(
        if quick { "quick" } else { "full" },
        run_benches(&benches, config),
    )
}

/// Looks up the entry for a (benchmark, tool) pair in a slice of suite
/// entries (the one matching rule shared by every renderer).
fn find_entry<'a>(entries: &'a [Entry], name: &str, tool: &str) -> Option<&'a Entry> {
    entries
        .iter()
        .find(|e| e.benchmark == name && e.tool == tool)
}

fn fmt_entry_time(entry: Option<&Entry>) -> String {
    match entry {
        None => "       ?".to_string(),
        Some(e) => match e.status {
            JobStatus::TimedOut => "     t/o".to_string(),
            JobStatus::Crashed => "   crash".to_string(),
            JobStatus::Ok if e.proved => format!("{:8.3}", e.millis / 1000.0),
            JobStatus::Ok => "       ✗".to_string(),
        },
    }
}

fn fmt_paper(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{s:8.2}"),
        None => "       ✗".to_string(),
    }
}

/// Renders one of the paper's tables from suite entries (which may cover
/// more benchmarks than the table; lookups go by name and tool).
pub fn render_family_table(title: &str, family: Family, quick: bool, entries: &[Entry]) -> String {
    use std::fmt::Write as _;
    let find = |name: &str, tool: &str| find_entry(entries, name, tool);
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<18} {:>4} {:>4} {:>4} {:>4} | {:>8} {:>8} {:>8} | paper: {:>8} {:>8} {:>8}",
        "benchmark",
        "|N|",
        "|δ|",
        "|V|",
        "|E|",
        "naySL",
        "nayHorn",
        "nope",
        "naySL",
        "nayHorn",
        "nope"
    );
    for bench in select(family, quick) {
        let paper = bench.paper.as_ref();
        let _ = writeln!(
            out,
            "{:<18} {:>4} {:>4} {:>4} {:>4} | {} {} {} | paper: {} {} {}",
            bench.name,
            bench.num_nonterminals(),
            bench.num_productions(),
            bench.num_variables(),
            bench.num_examples(),
            fmt_entry_time(find(&bench.name, "naySL")),
            fmt_entry_time(find(&bench.name, "nayHorn")),
            fmt_entry_time(find(&bench.name, "nope")),
            fmt_paper(paper.and_then(|r| r.naysl_seconds)),
            fmt_paper(paper.and_then(|r| r.nayhorn_seconds)),
            fmt_paper(paper.and_then(|r| r.nope_seconds)),
        );
    }
    out
}

/// Renders the §8.1 solved-benchmark counts from suite entries.
pub fn render_summary(entries: &[Entry], quick: bool) -> String {
    use std::fmt::Write as _;
    let proved = |name: &str, tool: &str| find_entry(entries, name, tool).is_some_and(|e| e.proved);
    let mut out = String::new();
    let _ = writeln!(out, "# §8.1 — solved-benchmark counts");
    let mut totals = (0usize, 0usize, 0usize, 0usize); // (run, naySL, nayHorn, nope)
    let mut naysl_only = 0usize;
    for family in FAMILIES {
        let benches = select(family, quick);
        let mut counts = (0usize, 0usize, 0usize);
        for bench in &benches {
            let sl = proved(&bench.name, "naySL");
            let horn = proved(&bench.name, "nayHorn");
            let nope = proved(&bench.name, "nope");
            counts.0 += usize::from(sl);
            counts.1 += usize::from(horn);
            counts.2 += usize::from(nope);
            naysl_only += usize::from(sl && !nope);
            totals.0 += 1;
            totals.1 += usize::from(sl);
            totals.2 += usize::from(horn);
            totals.3 += usize::from(nope);
        }
        let _ = writeln!(
            out,
            "{:<14} ({:>3} run): naySL {:>3}  nayHorn {:>3}  nope {:>3}",
            family.name(),
            benches.len(),
            counts.0,
            counts.1,
            counts.2
        );
    }
    let _ = writeln!(
        out,
        "total          ({:>3} run): naySL {:>3}  nayHorn {:>3}  nope {:>3}  (naySL-only vs nope: {})",
        totals.0, totals.1, totals.2, totals.3, naysl_only
    );
    let _ = writeln!(
        out,
        "paper (132 benchmarks): naySL 70, nayHorn 59, nope 59, naySL-only 11"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_benches_yields_one_entry_per_tool_in_input_order() {
        let benches: Vec<Benchmark> = select(Family::LimitedConst, true)
            .into_iter()
            .take(2)
            .collect();
        let entries = run_benches(&benches, &PoolConfig::serial());
        assert_eq!(entries.len(), benches.len() * TOOLS.len());
        for (i, entry) in entries.iter().enumerate() {
            assert_eq!(entry.benchmark, benches[i / 3].name);
            assert_eq!(entry.tool, TOOLS[i % 3]);
            assert_eq!(entry.status, JobStatus::Ok);
            assert_ne!(entry.verdict, "-");
        }
    }

    #[test]
    fn summary_renders_from_entries() {
        let benches: Vec<Benchmark> = select(Family::LimitedConst, true)
            .into_iter()
            .take(1)
            .collect();
        let entries = run_benches(&benches, &PoolConfig::serial());
        let summary = render_summary(&entries, true);
        assert!(summary.contains("solved-benchmark counts"));
        assert!(summary.contains("LimitedConst"));
    }
}
