//! The `h(G)` grammar rewriting that removes `Minus` by pushing negations to
//! the leaves (§5.2), extended to CLIA grammars (§6.1).
//!
//! For every integer nonterminal `X` of the input grammar the rewritten
//! grammar contains `X` and its "negative" twin `X⁻`, whose language is the
//! negation of the language of `X` (Lemma 5.4):
//!
//! * `X → Plus(X₁, X₂)`      becomes `X → Plus(X₁, X₂)` and `X⁻ → Plus(X₁⁻, X₂⁻)`
//! * `X → Minus(X₁, X₂)`     becomes `X → Plus(X₁, X₂⁻)` and `X⁻ → Plus(X₁⁻, X₂)`
//! * `X → Num(c)`            becomes `X → Num(c)` and `X⁻ → Num(-c)`
//! * `X → Var(x)`            becomes `X → Var(x)` and `X⁻ → NegVar(x)`
//! * `X → IfThenElse(B,T,E)` becomes itself and `X⁻ → IfThenElse(B, T⁻, E⁻)`
//!
//! Boolean productions are copied unchanged (their arguments are positive
//! nonterminals). Finally the result is trimmed to the nonterminals
//! reachable from the start symbol.

use crate::grammar::{Grammar, GrammarBuilder, NonTerminal, Production};
use crate::term::{Sort, Symbol};
use crate::SygusError;

/// Rewrites a LIA or CLIA grammar into the equivalent `Minus`-free
/// LIA⁺/CLIA⁺ form `h(G)`.
///
/// Grammars without `Minus` are returned unchanged (modulo trimming), so the
/// function is idempotent.
///
/// # Errors
/// Returns an error if the input grammar is malformed (should not happen for
/// grammars built through [`GrammarBuilder`]).
pub fn to_plus_form(grammar: &Grammar) -> Result<Grammar, SygusError> {
    if !grammar.has_minus() {
        return Ok(grammar.trim());
    }

    let mut builder = GrammarBuilder::new(grammar.start().name());
    // Declare every original nonterminal and, for integer nonterminals,
    // the negative twin.
    for nt in grammar.nonterminals() {
        let sort = grammar
            .sort_of(nt)
            .ok_or_else(|| SygusError::GrammarError(format!("nonterminal {nt} has no sort")))?;
        builder = builder.nonterminal(nt.name(), sort);
        if sort == Sort::Int {
            builder = builder.nonterminal(nt.negative().name(), Sort::Int);
        }
    }

    for p in grammar.productions() {
        builder = add_rewritten(builder, grammar, p)?;
    }
    Ok(builder.build()?.trim())
}

fn add_rewritten(
    mut builder: GrammarBuilder,
    grammar: &Grammar,
    p: &Production,
) -> Result<GrammarBuilder, SygusError> {
    let lhs = p.lhs.clone();
    let neg_lhs = lhs.negative();
    let args = p.args.clone();
    let neg_args =
        |args: &[NonTerminal]| -> Vec<NonTerminal> { args.iter().map(|a| a.negative()).collect() };
    match &p.symbol {
        Symbol::Plus => {
            builder = builder.production_nt(lhs, Symbol::Plus, args.clone());
            builder = builder.production_nt(neg_lhs, Symbol::Plus, neg_args(&args));
        }
        Symbol::Minus => {
            // X → Plus(X₁, X₂⁻), X⁻ → Plus(X₁⁻, X₂)
            let (a, b) = (args[0].clone(), args[1].clone());
            builder = builder.production_nt(lhs, Symbol::Plus, vec![a.clone(), b.negative()]);
            builder = builder.production_nt(neg_lhs, Symbol::Plus, vec![a.negative(), b]);
        }
        Symbol::Num(c) => {
            builder = builder.production_nt(lhs, Symbol::Num(*c), vec![]);
            builder = builder.production_nt(neg_lhs, Symbol::Num(-c), vec![]);
        }
        Symbol::Var(x) => {
            builder = builder.production_nt(lhs, Symbol::Var(x.clone()), vec![]);
            builder = builder.production_nt(neg_lhs, Symbol::NegVar(x.clone()), vec![]);
        }
        Symbol::NegVar(x) => {
            builder = builder.production_nt(lhs, Symbol::NegVar(x.clone()), vec![]);
            builder = builder.production_nt(neg_lhs, Symbol::Var(x.clone()), vec![]);
        }
        Symbol::IfThenElse => {
            let (b, t, e) = (args[0].clone(), args[1].clone(), args[2].clone());
            builder = builder.production_nt(
                lhs,
                Symbol::IfThenElse,
                vec![b.clone(), t.clone(), e.clone()],
            );
            builder = builder.production_nt(
                neg_lhs,
                Symbol::IfThenElse,
                vec![b, t.negative(), e.negative()],
            );
        }
        // Boolean symbols: arguments keep their positive versions; there is
        // no negative twin for a Boolean nonterminal.
        Symbol::And | Symbol::Or | Symbol::Not | Symbol::LessThan | Symbol::Equal => {
            debug_assert_eq!(grammar.sort_of(&p.lhs), Some(Sort::Bool));
            builder = builder.production_nt(lhs, p.symbol.clone(), args);
        }
    }
    Ok(builder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::ExampleSet;
    use crate::grammar::GrammarBuilder;
    use crate::term::Sort;
    use std::collections::BTreeSet;

    /// Example 5.3: Start ::= Minus(Start, Start) | Num(1) | Var(x)
    fn example_5_3() -> Grammar {
        GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Minus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .production("Start", Symbol::Var("x".to_string()), &[])
            .build()
            .unwrap()
    }

    #[test]
    fn example_5_3_shape() {
        let h = to_plus_form(&example_5_3()).unwrap();
        // Start and Start⁻, three productions each
        assert_eq!(h.num_nonterminals(), 2);
        assert_eq!(h.num_productions(), 6);
        assert!(!h.has_minus());
        let names: BTreeSet<&str> = h.nonterminals().iter().map(|n| n.name()).collect();
        assert!(names.contains("Start"));
        assert!(names.contains("Start⁻"));
    }

    #[test]
    fn minus_free_grammar_is_unchanged() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .production("Start", Symbol::Plus, &["Start", "Start"])
            .production("Start", Symbol::Num(1), &[])
            .build()
            .unwrap();
        let h = to_plus_form(&g).unwrap();
        assert_eq!(h.num_productions(), 2);
        assert!(!h.has_minus());
    }

    #[test]
    fn semantic_equivalence_on_sampled_terms() {
        // Lemma 5.4 (sampled): every value producible by G on E is producible
        // by h(G) on E, and vice versa.
        let g = example_5_3();
        let h = to_plus_form(&g).unwrap();
        let examples = ExampleSet::for_single_var("x", [2, 5]);

        let outputs = |grammar: &Grammar| -> BTreeSet<Vec<i64>> {
            grammar
                .terms_up_to_size(grammar.start(), 5, 10_000)
                .iter()
                .map(|t| t.eval_on(&examples).unwrap().as_int().unwrap().to_vec())
                .collect()
        };
        // The h(G) rewriting maps derivations to derivations of the same
        // size in both directions, so for a fixed size bound the producible
        // output sets coincide exactly.
        assert_eq!(outputs(&g), outputs(&h));
    }

    #[test]
    fn clia_ite_rewriting() {
        let g = GrammarBuilder::new("Start")
            .nonterminal("Start", Sort::Int)
            .nonterminal("B", Sort::Bool)
            .production("Start", Symbol::Minus, &["Start", "Start"])
            .production("Start", Symbol::Num(3), &[])
            .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
            .production("B", Symbol::LessThan, &["Start", "Start"])
            .build()
            .unwrap();
        let h = to_plus_form(&g).unwrap();
        assert!(!h.has_minus());
        assert!(h.has_ite());
        // Boolean nonterminal must not get a negative twin
        assert!(h.nonterminals().iter().all(|nt| nt.name() != "B⁻"));
    }

    #[test]
    fn idempotence() {
        let h = to_plus_form(&example_5_3()).unwrap();
        let h2 = to_plus_form(&h).unwrap();
        assert_eq!(h.num_productions(), h2.num_productions());
        assert_eq!(h.num_nonterminals(), h2.num_nonterminals());
    }
}
