//! The experiment harness: functions that regenerate every table and figure
//! of the paper's evaluation (§8) on the reproduced benchmark suite.
//!
//! Each `reproduce_*` function returns a plain-text report (the same rows or
//! series the paper presents); the `reproduce` binary prints them and
//! EXPERIMENTS.md records a snapshot together with the paper's numbers.
//!
//! Absolute times differ from the paper (different machine, different SMT
//! substrate); what is expected to match is the *shape*: which tool solves
//! which benchmark, how running time grows with `|N|` and `|E|`, and the
//! effect of the stratification optimisation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use benchmarks::{Benchmark, Family};
use nay::check::{check_unrealizable, Verdict};
use nay::Mode;
use nope::{NopeSolver, NopeVerdict};
use std::fmt::Write as _;
use std::time::Instant;

/// The result of running one tool on one benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool name (`naySL`, `nayHorn`, `nope`).
    pub tool: &'static str,
    /// Whether the tool proved unrealizability.
    pub proved: bool,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs one of the nay modes on a benchmark's witness example set.
pub fn run_nay(bench: &Benchmark, mode: &Mode) -> Measurement {
    let started = Instant::now();
    let outcome = check_unrealizable(&bench.problem, &bench.witness_examples, mode);
    Measurement {
        benchmark: bench.name.clone(),
        tool: if *mode == Mode::Horn { "nayHorn" } else { "naySL" },
        proved: outcome.verdict == Verdict::Unrealizable,
        seconds: started.elapsed().as_secs_f64(),
    }
}

/// Runs the nope baseline on a benchmark's witness example set.
pub fn run_nope(bench: &Benchmark) -> Measurement {
    let started = Instant::now();
    let (verdict, _) = NopeSolver::new().check(&bench.problem, &bench.witness_examples);
    Measurement {
        benchmark: bench.name.clone(),
        tool: "nope",
        proved: verdict == NopeVerdict::Unrealizable,
        seconds: started.elapsed().as_secs_f64(),
    }
}

fn fmt_time(m: &Measurement) -> String {
    if m.proved {
        format!("{:8.3}", m.seconds)
    } else {
        "       ✗".to_string()
    }
}

fn fmt_paper(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{s:8.2}"),
        None => "       ✗".to_string(),
    }
}

/// Selects the benchmarks of a family that are cheap enough for the `quick`
/// harness mode (small grammars and few examples); the full mode runs all of
/// them.
pub fn select(family: Family, quick: bool) -> Vec<Benchmark> {
    benchmarks::all()
        .into_iter()
        .filter(|b| b.family == family)
        .filter(|b| {
            if !quick {
                return true;
            }
            let masks = 1usize << b.num_examples().min(4);
            let cost = b.num_nonterminals() * if b.problem.grammar().has_ite() { masks } else { 1 };
            cost <= 32 && b.num_examples() <= 4
        })
        .collect()
}

fn table_report(title: &str, family: Family, quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<18} {:>4} {:>4} {:>4} {:>4} | {:>8} {:>8} {:>8} | paper: {:>8} {:>8} {:>8}",
        "benchmark", "|N|", "|δ|", "|V|", "|E|", "naySL", "nayHorn", "nope", "naySL", "nayHorn", "nope"
    );
    for bench in select(family, quick) {
        let sl = run_nay(&bench, &Mode::default());
        let horn = run_nay(&bench, &Mode::horn());
        let nope = run_nope(&bench);
        let paper = bench.paper.as_ref();
        let _ = writeln!(
            out,
            "{:<18} {:>4} {:>4} {:>4} {:>4} | {} {} {} | paper: {} {} {}",
            bench.name,
            bench.num_nonterminals(),
            bench.num_productions(),
            bench.num_variables(),
            bench.num_examples(),
            fmt_time(&sl),
            fmt_time(&horn),
            fmt_time(&nope),
            fmt_paper(paper.and_then(|r| r.naysl_seconds)),
            fmt_paper(paper.and_then(|r| r.nayhorn_seconds)),
            fmt_paper(paper.and_then(|r| r.nope_seconds)),
        );
    }
    out
}

/// Table 1 (LimitedPlus rows): naySL vs nayHorn vs nope.
pub fn reproduce_table1_plus(quick: bool) -> String {
    table_report("Table 1 — LimitedPlus", Family::LimitedPlus, quick)
}

/// Table 1 (LimitedIf rows).
pub fn reproduce_table1_if(quick: bool) -> String {
    table_report("Table 1 — LimitedIf", Family::LimitedIf, quick)
}

/// Table 2 (LimitedConst rows).
pub fn reproduce_table2(quick: bool) -> String {
    table_report("Table 2 — LimitedConst", Family::LimitedConst, quick)
}

/// Fig. 2: time to compute the semi-linear set of the start symbol as a
/// function of `|N|`, one series per number of examples.
pub fn reproduce_fig2(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 2 — naySL semi-linear solving time vs |N|");
    let _ = writeln!(out, "{:<6} {:<6} {:>12} {:>10}", "|N|", "|E|", "seconds", "verdict");
    let max_n = if quick { 8 } else { 16 };
    let max_e = if quick { 3 } else { 4 };
    for num_examples in 1..=max_e {
        for n in (2..=max_n).step_by(2) {
            let problem = benchmarks::scaling_problem(n);
            let examples =
                sygus::ExampleSet::for_single_var("x", (1..=num_examples as i64).collect::<Vec<_>>());
            let started = Instant::now();
            let outcome = check_unrealizable(&problem, &examples, &Mode::default());
            let _ = writeln!(
                out,
                "{:<6} {:<6} {:>12.4} {:>10}",
                n + 1,
                num_examples,
                started.elapsed().as_secs_f64(),
                format!("{:?}", outcome.verdict)
            );
        }
    }
    out
}

/// Fig. 3 and Fig. 5: nayHorn / nope running time as a function of `|E|`,
/// one series per `|N|`.
pub fn reproduce_fig3_fig5(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 3 / Fig. 5 — nayHorn and nope time vs |E|");
    let _ = writeln!(
        out,
        "{:<6} {:<6} {:>14} {:>14}",
        "|N|", "|E|", "nayHorn (s)", "nope (s)"
    );
    let max_e = if quick { 5 } else { 9 };
    for n in 1..=3usize {
        for e in 1..=max_e {
            let problem = benchmarks::scaling_problem(n);
            let examples =
                sygus::ExampleSet::for_single_var("x", (1..=e as i64).collect::<Vec<_>>());
            let started = Instant::now();
            let _ = check_unrealizable(&problem, &examples, &Mode::horn());
            let horn_time = started.elapsed().as_secs_f64();
            let started = Instant::now();
            let bench_problem = problem.clone();
            let _ = NopeSolver::new().check(&bench_problem, &examples);
            let nope_time = started.elapsed().as_secs_f64();
            let _ = writeln!(
                out,
                "{:<6} {:<6} {:>14.4} {:>14.4}",
                n + 1,
                e,
                horn_time,
                nope_time
            );
        }
    }
    out
}

/// Fig. 4: the effect of the stratification optimisation on naySL's
/// semi-linear solving time (per benchmark, with vs without).
pub fn reproduce_fig4(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 4 — stratification speed-up");
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>14} {:>8}",
        "benchmark", "stratified (s)", "no opt. (s)", "speedup"
    );
    let max_n = if quick { 10 } else { 20 };
    for n in (2..=max_n).step_by(2) {
        let problem = benchmarks::scaling_problem(n);
        let examples = sygus::ExampleSet::for_single_var("x", [1, 2]);
        let started = Instant::now();
        let _ = check_unrealizable(&problem, &examples, &Mode::default());
        let stratified = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let _ = check_unrealizable(&problem, &examples, &Mode::semi_linear_unstratified());
        let unstratified = started.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "{:<22} {:>14.4} {:>14.4} {:>8.2}",
            format!("scaling_n{n}"),
            stratified,
            unstratified,
            unstratified / stratified.max(1e-9)
        );
    }
    // also a couple of the table benchmarks
    for bench in select(Family::LimitedConst, true).into_iter().take(4) {
        let started = Instant::now();
        let _ = check_unrealizable(&bench.problem, &bench.witness_examples, &Mode::default());
        let stratified = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let _ = check_unrealizable(
            &bench.problem,
            &bench.witness_examples,
            &Mode::semi_linear_unstratified(),
        );
        let unstratified = started.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "{:<22} {:>14.4} {:>14.4} {:>8.2}",
            bench.name,
            stratified,
            unstratified,
            unstratified / stratified.max(1e-9)
        );
    }
    out
}

/// The §8.1 headline numbers: how many benchmarks each tool proves
/// unrealizable, and how many naySL solves that nope does not.
pub fn reproduce_summary(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# §8.1 — solved-benchmark counts");
    let families = [Family::LimitedPlus, Family::LimitedIf, Family::LimitedConst];
    let mut totals = (0usize, 0usize, 0usize, 0usize); // (run, naySL, nayHorn, nope)
    let mut naysl_only = 0usize;
    for family in families {
        let benches = select(family, quick);
        let mut counts = (0usize, 0usize, 0usize);
        for bench in &benches {
            let sl = run_nay(bench, &Mode::default());
            let horn = run_nay(bench, &Mode::horn());
            let nope = run_nope(bench);
            counts.0 += usize::from(sl.proved);
            counts.1 += usize::from(horn.proved);
            counts.2 += usize::from(nope.proved);
            naysl_only += usize::from(sl.proved && !nope.proved);
            totals.0 += 1;
            totals.1 += usize::from(sl.proved);
            totals.2 += usize::from(horn.proved);
            totals.3 += usize::from(nope.proved);
        }
        let _ = writeln!(
            out,
            "{:<14} ({:>3} run): naySL {:>3}  nayHorn {:>3}  nope {:>3}",
            family.name(),
            benches.len(),
            counts.0,
            counts.1,
            counts.2
        );
    }
    let _ = writeln!(
        out,
        "total          ({:>3} run): naySL {:>3}  nayHorn {:>3}  nope {:>3}  (naySL-only vs nope: {})",
        totals.0, totals.1, totals.2, totals.3, naysl_only
    );
    let _ = writeln!(
        out,
        "paper (132 benchmarks): naySL 70, nayHorn 59, nope 59, naySL-only 11"
    );
    out
}

/// Runs every experiment and concatenates the reports.
pub fn reproduce_all(quick: bool) -> String {
    let mut out = String::new();
    for part in [
        reproduce_table1_plus(quick),
        reproduce_table1_if(quick),
        reproduce_table2(quick),
        reproduce_fig2(quick),
        reproduce_fig3_fig5(quick),
        reproduce_fig4(quick),
        reproduce_summary(quick),
    ] {
        out.push_str(&part);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_selection_is_nonempty_for_every_family() {
        assert!(!select(Family::LimitedPlus, true).is_empty());
        assert!(!select(Family::LimitedIf, true).is_empty());
        assert!(!select(Family::LimitedConst, true).is_empty());
    }

    #[test]
    fn measurements_have_sane_fields() {
        let bench = select(Family::LimitedConst, true)
            .into_iter()
            .next()
            .expect("at least one quick benchmark");
        let m = run_nay(&bench, &Mode::default());
        assert_eq!(m.tool, "naySL");
        assert!(m.seconds >= 0.0);
    }

    #[test]
    fn fig2_report_has_the_expected_shape() {
        let report = reproduce_fig2(true);
        assert!(report.contains("Fig. 2"));
        assert!(report.lines().count() > 5);
    }
}
