//! Stratified equation solving (§7, "Solving GFA Equations via
//! Stratification").
//!
//! The variable-dependence graph of an equation system is condensed into its
//! strongly connected components (Tarjan's algorithm); the components are
//! then solved bottom-up in a topological order, substituting already-solved
//! variables by their values. Each stratum is solved with Newton's method,
//! so the overall result is still exact — but the matrices handled by each
//! Newton run are much smaller, which is the speed-up measured in Fig. 4.

use crate::equations::{EquationSystem, Solution};
use crate::newton;
use crate::semiring::Semiring;

/// Computes the strongly connected components of a directed graph given by
/// `edges` over nodes `0..num_nodes`, returned in **reverse topological
/// order** (i.e. a component appears after every component it depends on —
/// callers can solve them left to right).
///
/// Edges are interpreted as "`from` depends on `to`".
pub fn strongly_connected_components(
    num_nodes: usize,
    edges: &[(usize, usize)],
) -> Vec<Vec<usize>> {
    // Tarjan's algorithm, iterative to avoid deep recursion.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for &(from, to) in edges {
        succ[from].push(to);
    }

    #[derive(Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false,
        };
        num_nodes
    ];
    let mut next_index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<usize>> = Vec::new();

    // explicit DFS stack: (node, next child position)
    for root in 0..num_nodes {
        if state[root].index.is_some() {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child_pos)) = dfs.last_mut() {
            if *child_pos == 0 {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if *child_pos < succ[v].len() {
                let w = succ[v][*child_pos];
                *child_pos += 1;
                match state[w].index {
                    None => dfs.push((w, 0)),
                    Some(w_index) => {
                        if state[w].on_stack {
                            state[v].lowlink = state[v].lowlink.min(w_index);
                        }
                    }
                }
            } else {
                // finished v
                if state[v].lowlink == state[v].index.expect("visited") {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack contains the component");
                        state[w].on_stack = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    let v_low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(v_low);
                }
            }
        }
    }
    // Tarjan emits components in reverse topological order of the condensation
    // when edges are "depends on": a component is emitted only after all
    // components it reaches have been emitted.
    components
}

/// Solves the equation system stratum by stratum (SCC by SCC), using
/// Newton's method within each stratum. Returns an exact least solution for
/// commutative idempotent ω-continuous semirings, like [`newton::solve`],
/// but typically much faster on grammars with many nonterminals.
pub fn solve_stratified<S: Semiring>(
    semiring: &S,
    system: &EquationSystem<S::Elem>,
) -> Solution<S::Elem> {
    let n = system.num_vars();
    let components = strongly_connected_components(n, &system.dependencies());
    let mut values: Vec<Option<S::Elem>> = vec![None; n];
    let mut iterations = 0;

    for component in &components {
        let (subsystem, mapping) = system.restrict(semiring, component, &values);
        let sub_solution = newton::solve(semiring, &subsystem);
        iterations += sub_solution.iterations;
        for (local, &global) in mapping.iter().enumerate() {
            values[global] = Some(sub_solution.values[local].clone());
        }
    }

    Solution {
        values: values
            .into_iter()
            .map(|v| v.unwrap_or_else(|| semiring.zero()))
            .collect(),
        iterations,
        exact: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::Monomial;
    use crate::semiring::SemiLinearSemiring;
    use semilinear::{IntVec, SemiLinearSet};

    fn single(v: &[i64]) -> SemiLinearSet {
        SemiLinearSet::singleton(IntVec::from(v.to_vec()))
    }

    #[test]
    fn scc_of_a_chain() {
        // 0 depends on 1 depends on 2
        let sccs = strongly_connected_components(3, &[(0, 1), (1, 2)]);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn scc_of_a_cycle() {
        let sccs = strongly_connected_components(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0], vec![2]);
        assert_eq!(sccs[1], vec![0, 1]);
    }

    #[test]
    fn scc_topological_order_respects_dependencies() {
        // two independent cycles {0,1} and {2,3}, with 0 depending on 2
        let sccs = strongly_connected_components(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2)]);
        assert_eq!(sccs.len(), 2);
        let pos_01 = sccs.iter().position(|c| c.contains(&0)).unwrap();
        let pos_23 = sccs.iter().position(|c| c.contains(&2)).unwrap();
        assert!(
            pos_23 < pos_01,
            "the component {{2,3}} must be solved before {{0,1}}"
        );
    }

    #[test]
    fn disconnected_nodes_form_their_own_components() {
        let sccs = strongly_connected_components(3, &[]);
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn stratified_matches_monolithic_newton() {
        // The G1 system of Example 5.7 (4 variables, one proper SCC).
        let sr = SemiLinearSemiring::new(2);
        let mut sys = EquationSystem::new(4);
        let (start, s1, s2, s3) = (0, 1, 2, 3);
        sys.add_monomial(start, Monomial::new(SemiLinearSet::one(2), vec![s1, start]));
        sys.add_monomial(start, Monomial::constant(single(&[0, 0])));
        sys.add_monomial(s1, Monomial::new(single(&[1, 2]), vec![s2]));
        sys.add_monomial(s2, Monomial::new(single(&[1, 2]), vec![s3]));
        sys.add_monomial(s3, Monomial::constant(single(&[1, 2])));

        let direct = newton::solve(&sr, &sys);
        let stratified = solve_stratified(&sr, &sys);
        for (a, b) in direct.values.iter().zip(&stratified.values) {
            assert!(a.sample_equivalent(b, 4), "{a} vs {b}");
        }
    }

    #[test]
    fn stratified_solves_mutually_recursive_strata() {
        // X0 = X1 ⊗ {1} ⊕ {0}, X1 = X0 ⊗ {1}   (one SCC of size 2)
        // X2 = X0 ⊗ {10}                        (separate downstream stratum)
        let sr = SemiLinearSemiring::new(1);
        let mut sys = EquationSystem::new(3);
        sys.add_monomial(0, Monomial::new(single(&[1]), vec![1]));
        sys.add_monomial(0, Monomial::constant(single(&[0])));
        sys.add_monomial(1, Monomial::new(single(&[1]), vec![0]));
        sys.add_monomial(2, Monomial::new(single(&[10]), vec![0]));
        let sol = solve_stratified(&sr, &sys);
        // X0 = even numbers, X1 = odd numbers, X2 = 10 + even
        assert!(sol.values[0].contains(&IntVec::from(vec![0])));
        assert!(sol.values[0].contains(&IntVec::from(vec![4])));
        assert!(!sol.values[0].contains(&IntVec::from(vec![3])));
        assert!(sol.values[1].contains(&IntVec::from(vec![1])));
        assert!(sol.values[1].contains(&IntVec::from(vec![5])));
        assert!(!sol.values[1].contains(&IntVec::from(vec![2])));
        assert!(sol.values[2].contains(&IntVec::from(vec![10])));
        assert!(sol.values[2].contains(&IntVec::from(vec![12])));
        assert!(!sol.values[2].contains(&IntVec::from(vec![11])));
    }
}
