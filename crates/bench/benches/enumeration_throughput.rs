//! Criterion bench: enumeration throughput at a fixed size bound.
//!
//! Measures the enumerative solver's hot path on a CLIA grammar with a
//! deliberately unsatisfiable spec, so both contenders sweep the *whole*
//! observational-equivalence search space up to the bound:
//!
//! * `interned` — the production [`enumerative::Enumerator`] on the
//!   hash-consing [`sygus::TermArena`] (ids + memoized `⟦·⟧_E`);
//! * `baseline_term_clone` — a faithful replica of the pre-arena
//!   algorithm: owned [`Term`] trees, subtree `clone()`s on every combo,
//!   full `eval_on` per candidate, including the per-start-class spec
//!   check the production accept path performs.
//!
//! Comparability: the interned run is asserted (per iteration) to end in
//! `NotFound { size_bound: MAX_SIZE, exhausted: false }` — no early exit,
//! no `max_terms` cap hit, every size 1..=MAX_SIZE processed — and the
//! baseline unconditionally sweeps the same size range over the same
//! grammar and examples, so both enumerate the identical class sequence
//! and mean-time ÷ class-count is directly comparable as terms/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use enumerative::{EnumerationResult, Enumerator};
use logic::LinearExpr;
use std::collections::{BTreeMap, HashMap, HashSet};
use sygus::{ExampleSet, Grammar, GrammarBuilder, NonTerminal, Problem, Sort, Spec, Symbol, Term};

const MAX_SIZE: usize = 9;

/// A max2-style CLIA grammar: ints, comparisons and ite — the shape of the
/// paper's Table 1 `LimitedIf` instances.
fn clia_grammar() -> Grammar {
    GrammarBuilder::new("Start")
        .nonterminal("Start", Sort::Int)
        .nonterminal("B", Sort::Bool)
        .production("Start", Symbol::Var("x".to_string()), &[])
        .production("Start", Symbol::Var("y".to_string()), &[])
        .production("Start", Symbol::Num(0), &[])
        .production("Start", Symbol::Plus, &["Start", "Start"])
        .production("Start", Symbol::IfThenElse, &["B", "Start", "Start"])
        .production("B", Symbol::LessThan, &["Start", "Start"])
        .build()
        .expect("bench grammar is well-formed")
}

fn workload() -> (Problem, ExampleSet) {
    // Unsatisfiable target: forces a full sweep to the size bound.
    let spec = Spec::output_equals(
        LinearExpr::constant(1_000_000),
        vec!["x".to_string(), "y".to_string()],
    );
    let problem = Problem::new("throughput", clia_grammar(), spec);
    let examples = ExampleSet::from_examples([
        sygus::Example::from_pairs([("x", 1), ("y", 5)]),
        sygus::Example::from_pairs([("x", 4), ("y", 2)]),
        sygus::Example::from_pairs([("x", -3), ("y", 0)]),
    ]);
    (problem, examples)
}

/// The pre-arena enumeration loop, kept verbatim as the perf baseline:
/// owned trees in the per-size tables, `clone()` per combo element, a
/// from-scratch `eval_on` per candidate, and the production accept path's
/// spec check on every new start-symbol class. Returns the number of
/// observational-equivalence classes enumerated.
fn baseline_enumerate(
    grammar: &Grammar,
    examples: &ExampleSet,
    spec: &Spec,
    max_size: usize,
) -> usize {
    let mut signatures: HashMap<NonTerminal, HashSet<Vec<i64>>> = HashMap::new();
    let mut by_size: BTreeMap<(NonTerminal, usize), Vec<Term>> = BTreeMap::new();
    let mut total_terms = 0usize;
    for size in 1..=max_size {
        for nt in grammar.nonterminals() {
            let mut new_terms: Vec<Term> = Vec::new();
            for p in grammar.productions_of(nt) {
                if p.args.is_empty() {
                    if size == 1 {
                        new_terms.push(Term::leaf(p.symbol.clone()));
                    }
                    continue;
                }
                if size < p.args.len() + 1 {
                    continue;
                }
                let budget = size - 1;
                let mut combos: Vec<(usize, Vec<Term>)> = vec![(0, Vec::new())];
                for (arg_index, arg) in p.args.iter().enumerate() {
                    let remaining_args = p.args.len() - arg_index - 1;
                    let mut next = Vec::new();
                    for (used, terms) in &combos {
                        let max_here = budget - used - remaining_args;
                        for arg_size in 1..=max_here {
                            if let Some(candidates) = by_size.get(&(arg.clone(), arg_size)) {
                                for c in candidates {
                                    let mut terms2 = terms.clone();
                                    terms2.push(c.clone());
                                    next.push((used + arg_size, terms2));
                                }
                            }
                        }
                    }
                    combos = next;
                }
                for (used, args) in combos {
                    if used != budget {
                        continue;
                    }
                    if let Ok(t) = Term::apply(p.symbol.clone(), args) {
                        new_terms.push(t);
                    }
                }
            }
            for t in new_terms {
                let Ok(out) = t.eval_on(examples) else {
                    continue;
                };
                let sig: Vec<i64> = (0..out.len()).map(|j| out.as_i64(j)).collect();
                if signatures.entry(nt.clone()).or_default().insert(sig) {
                    if nt == grammar.start() {
                        let accepted = examples
                            .iter()
                            .enumerate()
                            .all(|(j, e)| spec.holds(e, out.as_i64(j)));
                        assert!(!accepted, "the workload spec must be unsatisfiable");
                    }
                    by_size.entry((nt.clone(), size)).or_default().push(t);
                    total_terms += 1;
                }
            }
        }
    }
    total_terms
}

fn bench_enumeration(c: &mut Criterion) {
    let (problem, examples) = workload();
    let classes = baseline_enumerate(problem.grammar(), &examples, problem.spec(), MAX_SIZE);
    assert!(classes > 0, "the workload must enumerate something");
    println!(
        "enumeration_throughput: {classes} observational classes at size bound {MAX_SIZE} \
         (terms/sec = classes / mean seconds per iteration)"
    );

    let mut group = c.benchmark_group("enumeration_throughput");
    group.sample_size(10);
    group.bench_function("baseline_term_clone", |b| {
        b.iter(|| {
            criterion::black_box(baseline_enumerate(
                problem.grammar(),
                &examples,
                problem.spec(),
                MAX_SIZE,
            ))
        })
    });
    group.bench_function("interned", |b| {
        b.iter(|| {
            let result = Enumerator::new()
                .with_max_size(MAX_SIZE)
                .solve(&problem, &examples);
            // full sweep: no solution, no saturation early-exit, no
            // max_terms cap — the same work the baseline performs
            assert_eq!(
                result,
                EnumerationResult::NotFound {
                    size_bound: MAX_SIZE,
                    exhausted: false
                }
            );
            criterion::black_box(result)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
