//! Symbolic concretization γ̂ of semi-linear sets as QF-LIA formulas (§5.4).
//!
//! For a linear set `⟨u, {v₁,…,vₙ}⟩` and output variables `o⃗`,
//!
//! ```text
//! γ̂(⟨u,V⟩, o⃗)  =  ∃λ₁…λₙ ∈ ℕ . o⃗ = u + λ₁v₁ + … + λₙvₙ
//! ```
//!
//! The existential quantifiers are rendered as fresh free variables, which is
//! sound for satisfiability checking (the only use the framework makes of
//! γ̂). For a semi-linear set, γ̂ is the disjunction over its linear sets,
//! sharing the output variables `o⃗` across disjuncts (Eqn. (26)).

use crate::linear::LinearSet;
use crate::set::SemiLinearSet;
use logic::{Formula, LinearExpr, Var};

/// Symbolically concretizes a linear set over the given output variables.
///
/// `lambda_prefix` is used to generate fresh coefficient variables, so
/// callers composing several concretizations must pass distinct prefixes.
///
/// # Panics
/// Panics if `outputs.len()` differs from the dimension of the linear set.
pub fn concretize_linear(ls: &LinearSet, outputs: &[Var], lambda_prefix: &str) -> Formula {
    assert_eq!(
        outputs.len(),
        ls.dim(),
        "output variable count must match the linear-set dimension"
    );
    let lambdas: Vec<Var> = (0..ls.generators().len())
        .map(|i| Var::new(format!("{lambda_prefix}_{i}")))
        .collect();

    let mut conjuncts: Vec<Formula> = Vec::new();
    // λᵢ ≥ 0
    for lam in &lambdas {
        conjuncts.push(Formula::ge(
            LinearExpr::var(lam.clone()),
            LinearExpr::constant(0),
        ));
    }
    // oⱼ = uⱼ + Σᵢ λᵢ·vᵢ[j]
    for (j, out) in outputs.iter().enumerate() {
        let mut rhs = LinearExpr::constant(ls.base()[j]);
        for (i, gen) in ls.generators().iter().enumerate() {
            rhs.add_term(lambdas[i].clone(), gen[j]);
        }
        conjuncts.push(Formula::eq(LinearExpr::var(out.clone()), rhs));
    }
    Formula::and(conjuncts)
}

/// Symbolically concretizes a semi-linear set over the given output
/// variables: the disjunction of the concretizations of its linear sets
/// (Eqn. (26)), with `o⃗` shared among all disjuncts.
///
/// The empty semi-linear set concretizes to `false` (it denotes no vectors).
pub fn concretize_semilinear(sl: &SemiLinearSet, outputs: &[Var]) -> Formula {
    concretize_semilinear_prefixed(sl, outputs, "lambda")
}

/// Like [`concretize_semilinear`], but with an explicit prefix for the fresh
/// coefficient variables. Use distinct prefixes when conjoining the
/// concretizations of several semi-linear sets in one formula (e.g. the
/// `⟦LessThan⟧♯` queries of §6.2), otherwise the existential coefficients
/// would be unintentionally shared.
pub fn concretize_semilinear_prefixed(
    sl: &SemiLinearSet,
    outputs: &[Var],
    prefix: &str,
) -> Formula {
    if sl.is_zero() {
        return Formula::False;
    }
    Formula::or(
        sl.linear_sets()
            .iter()
            .enumerate()
            .map(|(i, ls)| concretize_linear(ls, outputs, &format!("{prefix}_{i}"))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::IntVec;
    use logic::{Model, Solver, SolverResult};

    fn v(components: &[i64]) -> IntVec {
        IntVec::from(components.to_vec())
    }
    fn outs(n: usize) -> Vec<Var> {
        (0..n).map(|i| Var::indexed("o", i + 1)).collect()
    }

    #[test]
    fn singleton_concretization() {
        let ls = LinearSet::singleton(v(&[4, 7]));
        let f = concretize_linear(&ls, &outs(2), "lam");
        let mut m = Model::new();
        m.set(Var::indexed("o", 1), 4);
        m.set(Var::indexed("o", 2), 7);
        assert!(f.eval(&m));
        m.set(Var::indexed("o", 2), 8);
        assert!(!f.eval(&m));
    }

    #[test]
    fn paper_equation_four_via_concretization() {
        // γ̂({⟨0, {3}⟩}, o1) ∧ o1 = 2·i1 + 2 ∧ i1 = 1  is unsat
        let sl = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[0]), vec![v(&[3])])]);
        let o1 = Var::indexed("o", 1);
        let i1 = Var::indexed("i", 1);
        let gamma = concretize_semilinear(&sl, std::slice::from_ref(&o1));
        let spec = Formula::and(vec![
            Formula::eq(
                LinearExpr::var(o1),
                LinearExpr::var(i1.clone()).scale(2) + LinearExpr::constant(2),
            ),
            Formula::eq(LinearExpr::var(i1), LinearExpr::constant(1)),
        ]);
        let query = Formula::and(vec![gamma, spec]);
        assert_eq!(Solver::default().check(&query), SolverResult::Unsat);
    }

    #[test]
    fn satisfiable_concretization_yields_member() {
        // {⟨(0,0), {(2,4)}⟩}: o must be (2λ, 4λ)
        let sl = SemiLinearSet::from_linear_sets([LinearSet::new(v(&[0, 0]), vec![v(&[2, 4])])]);
        let outputs = outs(2);
        let gamma = concretize_semilinear(&sl, &outputs);
        let constraint = Formula::eq(LinearExpr::var(outputs[0].clone()), LinearExpr::constant(6));
        match Solver::default().check(&Formula::and(vec![gamma, constraint])) {
            SolverResult::Sat(m) => {
                let o = IntVec::from(vec![m.get_or_zero(&outputs[0]), m.get_or_zero(&outputs[1])]);
                assert_eq!(o, v(&[6, 12]));
                assert!(sl.contains(&o));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_set_concretizes_to_false() {
        assert_eq!(
            concretize_semilinear(&SemiLinearSet::zero(), &outs(1)),
            Formula::False
        );
    }

    #[test]
    fn membership_agrees_with_solver_on_samples() {
        let sl = SemiLinearSet::from_linear_sets([
            LinearSet::new(v(&[1, 1]), vec![v(&[2, 0]), v(&[0, 3])]),
            LinearSet::new(v(&[0, 5]), vec![v(&[1, 1])]),
        ]);
        let outputs = outs(2);
        let gamma = concretize_semilinear(&sl, &outputs);
        let solver = Solver::default();
        for target in [v(&[3, 4]), v(&[2, 7]), v(&[5, 1]), v(&[0, 5]), v(&[4, 9])] {
            let pin = Formula::and(vec![
                Formula::eq(
                    LinearExpr::var(outputs[0].clone()),
                    LinearExpr::constant(target[0]),
                ),
                Formula::eq(
                    LinearExpr::var(outputs[1].clone()),
                    LinearExpr::constant(target[1]),
                ),
            ]);
            let sat = solver
                .check(&Formula::and(vec![gamma.clone(), pin]))
                .is_sat();
            assert_eq!(
                sat,
                sl.contains(&target),
                "solver and membership disagree on {target}"
            );
        }
    }
}
