//! Property test: for generated instances, the verdict the daemon serves
//! from its cache equals a fresh in-process `Portfolio::race` — serving
//! memoized verdicts never changes an answer.

use gen::{GenConfig, ProblemStream};
use portfolio::Portfolio;
use proptest::prelude::*;
use server::{Client, Endpoint, ResponseStatus, Server, ServerConfig};
use std::sync::OnceLock;
use sygus::parser::problem_to_sygus;

/// One daemon shared by every proptest case (spinning a warm pool per
/// case would dominate the test's runtime). Leaked at process exit.
fn shared_endpoint() -> &'static Endpoint {
    static ENDPOINT: OnceLock<Endpoint> = OnceLock::new();
    ENDPOINT.get_or_init(|| {
        let server = Server::bind(ServerConfig::default()).expect("binding a loopback listener");
        let endpoint = server.endpoint();
        std::thread::spawn(move || server.run());
        endpoint
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cached_verdicts_equal_a_fresh_race(seed in 0u64..10_000) {
        let portfolio = Portfolio::new();
        let mut client = Client::connect(shared_endpoint()).expect("connect");
        for instance in ProblemStream::new(GenConfig::new(seed)).take(2) {
            let fresh = portfolio.race(&instance.problem);
            let text = problem_to_sygus(&instance.problem, "f");

            let first = client.solve(&instance.name(), &text).expect("solve");
            prop_assert_eq!(first.status, ResponseStatus::Ok);
            prop_assert_eq!(
                first.verdict.as_deref(),
                Some(fresh.verdict.name()),
                "daemon vs fresh race on {}",
                instance.name()
            );

            let second = client.solve(&instance.name(), &text).expect("re-solve");
            prop_assert_eq!(second.verdict.as_deref(), Some(fresh.verdict.name()));
            if fresh.verdict.is_definitive() {
                // Definitive verdicts are memoized; the replay must hit.
                prop_assert!(second.cached, "{:?}", second);
            } else {
                // Unknowns are budget-dependent and never cached.
                prop_assert!(!second.cached, "{:?}", second);
            }
        }
    }
}
