//! Isolation guarantees of the work-stealing pool: a timed-out job reports
//! `TimedOut` without killing the pool, and a panicking job reports
//! `Crashed` while its siblings run to completion.

use runner::{run_jobs, Job, JobStatus, PoolConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn timeout_fires_without_killing_the_pool() {
    let completed = Arc::new(AtomicUsize::new(0));
    let mut jobs = Vec::new();
    for i in 0..6 {
        let completed = Arc::clone(&completed);
        if i == 2 {
            jobs.push(Job::new("sleeper", move || {
                std::thread::sleep(Duration::from_secs(30));
                completed.fetch_add(1, Ordering::SeqCst);
                0usize
            }));
        } else {
            jobs.push(Job::new(format!("quick-{i}"), move || {
                completed.fetch_add(1, Ordering::SeqCst);
                i
            }));
        }
    }

    let config = PoolConfig {
        jobs: 3,
        timeout: Some(Duration::from_millis(100)),
    };
    let results = run_jobs(jobs, &config);

    assert_eq!(results.len(), 6);
    assert_eq!(results[2].id, "sleeper");
    assert_eq!(results[2].status, JobStatus::TimedOut);
    assert_eq!(results[2].output, None);
    assert_eq!(results[2].elapsed, Duration::from_millis(100));
    // Every sibling still completed, on the same pool, after the timeout.
    for (i, result) in results.iter().enumerate() {
        if i != 2 {
            assert_eq!(result.status, JobStatus::Ok, "sibling {i} was disturbed");
            assert_eq!(result.output, Some(i));
        }
    }
    assert_eq!(completed.load(Ordering::SeqCst), 5);
}

#[test]
fn panicking_job_reports_crashed_while_siblings_finish() {
    let mut jobs: Vec<Job<usize>> = Vec::new();
    for i in 0..8 {
        if i == 3 {
            jobs.push(Job::new("bomb", || panic!("benchmark exploded")));
        } else {
            jobs.push(Job::new(format!("steady-{i}"), move || i * 10));
        }
    }

    let results = run_jobs(
        jobs,
        &PoolConfig {
            jobs: 4,
            timeout: None,
        },
    );

    assert_eq!(results.len(), 8);
    assert_eq!(results[3].id, "bomb");
    assert_eq!(results[3].status, JobStatus::Crashed);
    assert_eq!(results[3].output, None);
    for (i, result) in results.iter().enumerate() {
        if i != 3 {
            assert_eq!(result.status, JobStatus::Ok, "sibling {i} was disturbed");
            assert_eq!(result.output, Some(i * 10));
        }
    }
}

#[test]
fn worker_counts_do_not_change_results() {
    let make_jobs = || -> Vec<Job<u64>> {
        (0..24u64)
            .map(|i| Job::new(format!("j{i}"), move || i.pow(2) + 1))
            .collect()
    };
    let serial = run_jobs(make_jobs(), &PoolConfig::serial());
    let parallel = run_jobs(
        make_jobs(),
        &PoolConfig {
            jobs: 8,
            timeout: None,
        },
    );
    let serial_out: Vec<_> = serial.iter().map(|r| (r.id.clone(), r.output)).collect();
    let parallel_out: Vec<_> = parallel.iter().map(|r| (r.id.clone(), r.output)).collect();
    assert_eq!(serial_out, parallel_out);
}

#[test]
fn stealing_drains_queues_that_belong_to_busy_workers() {
    // With 2 workers and one long-ish job, the other worker must steal the
    // remaining jobs instead of idling; the whole batch should finish well
    // before the sum of serial times.
    let mut jobs: Vec<Job<()>> = Vec::new();
    jobs.push(Job::new("long", || {
        std::thread::sleep(Duration::from_millis(300))
    }));
    for i in 0..6 {
        jobs.push(Job::new(format!("short-{i}"), || {
            std::thread::sleep(Duration::from_millis(30))
        }));
    }
    let (results, elapsed) = runner::measure(|| {
        run_jobs(
            jobs,
            &PoolConfig {
                jobs: 2,
                timeout: None,
            },
        )
    });
    assert!(results.iter().all(|r| r.status == JobStatus::Ok));
    // Serial would take 300 + 6*30 = 480ms; stealing bounds it near 300ms.
    assert!(
        elapsed < Duration::from_millis(460),
        "stealing did not overlap work: {elapsed:?}"
    );
}
