//! Quantifier-free linear integer arithmetic (QF-LIA) substrate.
//!
//! This crate provides the logical machinery that the paper delegates to an
//! off-the-shelf SMT solver (CVC4 / Z3):
//!
//! * [`LinearExpr`] — linear terms `c + Σ aᵢ·xᵢ` over integer variables,
//! * [`Formula`] — Boolean combinations of linear atoms,
//! * [`Solver`] — a satisfiability checker for QF-LIA built from scratch:
//!   simplification → NNF → DNF → per-cube integer feasibility via
//!   Omega-style equality elimination, exact rational simplex and
//!   branch-and-bound,
//! * [`Model`] — satisfying assignments, usable for counterexample generation.
//!
//! # Example
//!
//! ```
//! use logic::{Formula, LinearExpr, Solver, SolverResult, Var};
//!
//! // ∃ λ ≥ 0 . o = 3λ ∧ o = 4      (the running example of the paper, Eqn. (4))
//! let o = LinearExpr::var(Var::new("o"));
//! let lam = LinearExpr::var(Var::new("lam"));
//! let f = Formula::and(vec![
//!     Formula::ge(lam.clone(), LinearExpr::constant(0)),
//!     Formula::eq(o.clone(), lam.scale(3)),
//!     Formula::eq(o, LinearExpr::constant(4)),
//! ]);
//! assert_eq!(Solver::default().check(&f), SolverResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expr;
mod formula;
mod ilp;
mod model;
mod rational;
mod simplex;
mod solver;

pub use expr::{LinearExpr, Var};
pub use formula::{Atom, Formula, Rel};
pub use ilp::{Constraint, IlpProblem, IlpResult};
pub use model::Model;
pub use rational::Rational;
pub use simplex::{LpRel, LpResult, Simplex};
pub use solver::{Solver, SolverResult};
