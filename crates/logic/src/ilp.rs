//! Integer feasibility of conjunctions of linear constraints.
//!
//! This module implements the per-cube decision step of the
//! [`Solver`](crate::Solver): given a conjunction of integer linear
//! constraints, decide whether an integer solution exists and produce one if
//! so. The algorithm is
//!
//! 1. normalisation (strict inequalities tightened, GCD tests),
//! 2. exact elimination of equalities with a unit-coefficient variable,
//! 3. branch-and-bound over the exact rational simplex relaxation.
//!
//! The branch-and-bound search is budgeted; exceeding the budget yields
//! [`IlpResult::Unknown`], which callers treat conservatively.

use crate::rational::Rational;
use crate::simplex::{LpRel, Simplex};

/// A single linear constraint `Σ coeffs[i]·xᵢ REL rhs` over variable indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Coefficients, one per variable (index-based).
    pub coeffs: Vec<i64>,
    /// Relation (only `Le`, `Ge`, `Eq` — strict forms are normalised away).
    pub rel: LpRel,
    /// Right-hand side constant.
    pub rhs: i64,
}

impl Constraint {
    /// Creates a constraint; `coeffs` is indexed by variable number.
    pub fn new(coeffs: Vec<i64>, rel: LpRel, rhs: i64) -> Self {
        Constraint { coeffs, rel, rhs }
    }

    fn is_trivial(&self) -> Option<bool> {
        if self.coeffs.iter().all(|&c| c == 0) {
            Some(match self.rel {
                LpRel::Le => 0 <= self.rhs,
                LpRel::Ge => 0 >= self.rhs,
                LpRel::Eq => self.rhs == 0,
            })
        } else {
            None
        }
    }

    fn eval(&self, point: &[i64]) -> bool {
        let lhs: i64 = self.coeffs.iter().zip(point).map(|(c, v)| c * v).sum();
        match self.rel {
            LpRel::Le => lhs <= self.rhs,
            LpRel::Ge => lhs >= self.rhs,
            LpRel::Eq => lhs == self.rhs,
        }
    }
}

/// Result of an integer feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IlpResult {
    /// A satisfying integer point (indexed like the problem's variables).
    Sat(Vec<i64>),
    /// No integer point satisfies the constraints.
    Unsat,
    /// The search budget was exhausted before a decision was reached.
    Unknown,
}

/// An integer feasibility problem: find `x ∈ ℤⁿ` satisfying every constraint.
///
/// # Example
/// ```
/// use logic::{Constraint, IlpProblem, IlpResult, LpRel};
/// // 2x = 1 has no integer solution.
/// let mut p = IlpProblem::new(1);
/// p.add(Constraint::new(vec![2], LpRel::Eq, 1));
/// assert_eq!(p.solve(), IlpResult::Unsat);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IlpProblem {
    num_vars: usize,
    constraints: Vec<Constraint>,
    node_budget: usize,
}

/// A recorded substitution `x_var := Σ coeffs[i]·xᵢ + constant` used to
/// reconstruct eliminated variables.
#[derive(Clone, Debug)]
struct Substitution {
    var: usize,
    coeffs: Vec<i64>,
    constant: i64,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a >= 0 {
        a / b
    } else {
        -((-a + b - 1) / b)
    }
}

impl IlpProblem {
    /// Creates an empty problem over `num_vars` integer variables.
    pub fn new(num_vars: usize) -> Self {
        IlpProblem {
            num_vars,
            constraints: Vec::new(),
            node_budget: 4000,
        }
    }

    /// Overrides the branch-and-bound node budget (default 4000).
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget;
        self
    }

    /// Adds a constraint.
    ///
    /// # Panics
    /// Panics if the coefficient vector length differs from the number of
    /// variables.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(c.coeffs.len(), self.num_vars, "constraint arity mismatch");
        self.constraints.push(c);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Decides integer feasibility.
    pub fn solve(&self) -> IlpResult {
        // Work on a normalised copy: only Le and Eq constraints.
        let mut cons: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            match c.rel {
                LpRel::Le | LpRel::Eq => cons.push(c.clone()),
                LpRel::Ge => cons.push(Constraint::new(
                    c.coeffs.iter().map(|x| -x).collect(),
                    LpRel::Le,
                    -c.rhs,
                )),
            }
        }

        let mut substitutions: Vec<Substitution> = Vec::new();
        match self.preprocess(&mut cons, &mut substitutions) {
            Some(false) => return IlpResult::Unsat,
            Some(true) => {
                // all constraints trivially satisfied — any point works
                let mut point = vec![0i64; self.num_vars];
                Self::apply_substitutions(&mut point, &substitutions);
                return IlpResult::Sat(point);
            }
            None => {}
        }

        match self.branch_and_bound(&cons) {
            IlpResult::Sat(mut point) => {
                Self::apply_substitutions(&mut point, &substitutions);
                debug_assert!(
                    self.constraints.iter().all(|c| c.eval(&point)),
                    "internal error: reconstructed point violates constraints"
                );
                IlpResult::Sat(point)
            }
            other => other,
        }
    }

    /// Simplifies constraints in place. Returns `Some(false)` when a
    /// contradiction is detected, `Some(true)` when all constraints have been
    /// discharged, and `None` otherwise.
    fn preprocess(
        &self,
        cons: &mut Vec<Constraint>,
        substitutions: &mut Vec<Substitution>,
    ) -> Option<bool> {
        loop {
            // constant folding and GCD normalisation
            let mut i = 0;
            while i < cons.len() {
                if let Some(ok) = cons[i].is_trivial() {
                    if ok {
                        cons.swap_remove(i);
                        continue;
                    } else {
                        return Some(false);
                    }
                }
                let g = cons[i]
                    .coeffs
                    .iter()
                    .copied()
                    .filter(|&c| c != 0)
                    .fold(0, gcd);
                if g > 1 {
                    match cons[i].rel {
                        LpRel::Eq => {
                            if cons[i].rhs % g != 0 {
                                return Some(false);
                            }
                            for c in cons[i].coeffs.iter_mut() {
                                *c /= g;
                            }
                            cons[i].rhs /= g;
                        }
                        LpRel::Le => {
                            for c in cons[i].coeffs.iter_mut() {
                                *c /= g;
                            }
                            cons[i].rhs = div_floor(cons[i].rhs, g);
                        }
                        LpRel::Ge => unreachable!("normalised away"),
                    }
                }
                i += 1;
            }

            // eliminate one equality with a unit coefficient, if any
            let target = cons
                .iter()
                .position(|c| c.rel == LpRel::Eq && c.coeffs.iter().any(|&a| a == 1 || a == -1));
            let Some(idx) = target else {
                return if cons.is_empty() { Some(true) } else { None };
            };
            let eq = cons.swap_remove(idx);
            let var = eq
                .coeffs
                .iter()
                .position(|&a| a == 1 || a == -1)
                .expect("unit coefficient present");
            let sign = eq.coeffs[var];
            // sign*x_var + rest = rhs  →  x_var = sign*(rhs - rest)
            let mut sub_coeffs = vec![0i64; self.num_vars];
            for (j, &a) in eq.coeffs.iter().enumerate() {
                if j != var {
                    sub_coeffs[j] = -sign * a;
                }
            }
            let sub_const = sign * eq.rhs;
            // substitute into every remaining constraint
            for c in cons.iter_mut() {
                let factor = c.coeffs[var];
                if factor == 0 {
                    continue;
                }
                c.coeffs[var] = 0;
                for (cj, &sj) in c.coeffs.iter_mut().zip(&sub_coeffs) {
                    *cj += factor * sj;
                }
                c.rhs -= factor * sub_const;
            }
            substitutions.push(Substitution {
                var,
                coeffs: sub_coeffs,
                constant: sub_const,
            });
        }
    }

    fn apply_substitutions(point: &mut [i64], substitutions: &[Substitution]) {
        for sub in substitutions.iter().rev() {
            let mut v = sub.constant;
            for (j, &c) in sub.coeffs.iter().enumerate() {
                v += c * point[j];
            }
            point[sub.var] = v;
        }
    }

    fn branch_and_bound(&self, cons: &[Constraint]) -> IlpResult {
        // Stack of extra bound constraints (var, is_upper, bound).
        #[derive(Clone)]
        struct Node {
            extra: Vec<(usize, bool, i64)>,
        }
        let mut stack = vec![Node { extra: Vec::new() }];
        let mut nodes_used = 0usize;
        let mut hit_budget = false;

        while let Some(node) = stack.pop() {
            nodes_used += 1;
            if nodes_used > self.node_budget {
                hit_budget = true;
                break;
            }
            let mut lp = Simplex::new(self.num_vars);
            for c in cons {
                let coeffs: Vec<Rational> =
                    c.coeffs.iter().map(|&x| Rational::from_int(x)).collect();
                lp.add_constraint(coeffs, c.rel, Rational::from_int(c.rhs));
            }
            for &(var, is_upper, bound) in &node.extra {
                let mut coeffs = vec![Rational::ZERO; self.num_vars];
                coeffs[var] = Rational::ONE;
                let rel = if is_upper { LpRel::Le } else { LpRel::Ge };
                lp.add_constraint(coeffs, rel, Rational::from_int(bound));
            }
            let Some(point) = lp.feasible_point() else {
                continue;
            };
            // find a fractional coordinate
            match point.iter().position(|v| !v.is_integer()) {
                None => {
                    let int_point: Vec<i64> = point.iter().map(|v| v.numer() as i64).collect();
                    // The LP vertex satisfies all constraints by construction.
                    return IlpResult::Sat(int_point);
                }
                Some(var) => {
                    let v = point[var];
                    let mut low = node.clone();
                    low.extra.push((var, true, v.floor() as i64));
                    let mut high = node;
                    high.extra.push((var, false, v.ceil() as i64));
                    stack.push(low);
                    stack.push(high);
                }
            }
        }
        if hit_budget {
            IlpResult::Unknown
        } else {
            IlpResult::Unsat
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: Vec<i64>, rhs: i64) -> Constraint {
        Constraint::new(coeffs, LpRel::Le, rhs)
    }
    fn ge(coeffs: Vec<i64>, rhs: i64) -> Constraint {
        Constraint::new(coeffs, LpRel::Ge, rhs)
    }
    fn eq(coeffs: Vec<i64>, rhs: i64) -> Constraint {
        Constraint::new(coeffs, LpRel::Eq, rhs)
    }

    #[test]
    fn simple_sat() {
        // x >= 3 ∧ x <= 5
        let mut p = IlpProblem::new(1);
        p.add(ge(vec![1], 3));
        p.add(le(vec![1], 5));
        match p.solve() {
            IlpResult::Sat(point) => assert!((3..=5).contains(&point[0])),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_unsat() {
        let mut p = IlpProblem::new(1);
        p.add(ge(vec![1], 3));
        p.add(le(vec![1], 2));
        assert_eq!(p.solve(), IlpResult::Unsat);
    }

    #[test]
    fn parity_unsat_via_gcd() {
        // 2x = 1
        let mut p = IlpProblem::new(1);
        p.add(eq(vec![2], 1));
        assert_eq!(p.solve(), IlpResult::Unsat);
    }

    #[test]
    fn lattice_gap_requires_integrality() {
        // 2 ≤ 3x ≤ 2 has a rational solution (2/3) but no integer one.
        let mut p = IlpProblem::new(1);
        p.add(ge(vec![3], 2));
        p.add(le(vec![3], 2));
        assert_eq!(p.solve(), IlpResult::Unsat);
    }

    #[test]
    fn equality_elimination_reconstructs_model() {
        // o = 3λ ∧ λ ≥ 0 ∧ o = 6  →  λ = 2, o = 6
        // vars: 0 = o, 1 = λ
        let mut p = IlpProblem::new(2);
        p.add(eq(vec![1, -3], 0));
        p.add(ge(vec![0, 1], 0));
        p.add(eq(vec![1, 0], 6));
        match p.solve() {
            IlpResult::Sat(point) => {
                assert_eq!(point[0], 6);
                assert_eq!(point[1], 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_running_example_is_unsat() {
        // o = 3λ ∧ λ ≥ 0 ∧ o = 4 (Eqn. (4) of the paper, with i₁ = 1)
        let mut p = IlpProblem::new(2);
        p.add(eq(vec![1, -3], 0));
        p.add(ge(vec![0, 1], 0));
        p.add(eq(vec![1, 0], 4));
        assert_eq!(p.solve(), IlpResult::Unsat);
    }

    #[test]
    fn multi_var_system() {
        // x + y = 10, x - y >= 4, y >= 1  → e.g. x=7,y=3 ... any valid point
        let mut p = IlpProblem::new(2);
        p.add(eq(vec![1, 1], 10));
        p.add(ge(vec![1, -1], 4));
        p.add(ge(vec![0, 1], 1));
        match p.solve() {
            IlpResult::Sat(pt) => {
                assert_eq!(pt[0] + pt[1], 10);
                assert!(pt[0] - pt[1] >= 4);
                assert!(pt[1] >= 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_problem_is_sat() {
        let p = IlpProblem::new(3);
        match p.solve() {
            IlpResult::Sat(point) => assert_eq!(point.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trivially_false_constraint() {
        let mut p = IlpProblem::new(1);
        p.add(le(vec![0], -1)); // 0 <= -1
        assert_eq!(p.solve(), IlpResult::Unsat);
    }

    #[test]
    fn unbounded_feasible() {
        // x ≥ 100 with no upper bound
        let mut p = IlpProblem::new(1);
        p.add(ge(vec![1], 100));
        match p.solve() {
            IlpResult::Sat(point) => assert!(point[0] >= 100),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn brute_force_agreement_on_small_boxes() {
        // Compare against brute force on a handful of deterministic systems.
        let systems: Vec<Vec<Constraint>> = vec![
            vec![
                ge(vec![1, 0], -3),
                le(vec![1, 0], 3),
                ge(vec![0, 1], -3),
                le(vec![0, 1], 3),
                eq(vec![2, 3], 1),
            ],
            vec![
                ge(vec![1, 0], -3),
                le(vec![1, 0], 3),
                ge(vec![0, 1], -3),
                le(vec![0, 1], 3),
                eq(vec![2, 4], 7),
            ],
            vec![
                ge(vec![1, 0], 0),
                le(vec![1, 0], 4),
                ge(vec![0, 1], 0),
                le(vec![0, 1], 4),
                le(vec![1, 1], 2),
                ge(vec![1, 1], 2),
            ],
            vec![
                ge(vec![1, 0], -2),
                le(vec![1, 0], 2),
                ge(vec![0, 1], -2),
                le(vec![0, 1], 2),
                ge(vec![3, -2], 5),
            ],
        ];
        for cons in systems {
            let mut p = IlpProblem::new(2);
            for c in &cons {
                p.add(c.clone());
            }
            let brute = (-5..=5).any(|x| (-5..=5).any(|y| cons.iter().all(|c| c.eval(&[x, y]))));
            match p.solve() {
                IlpResult::Sat(pt) => {
                    assert!(
                        cons.iter().all(|c| c.eval(&pt)),
                        "returned point must satisfy system"
                    );
                    assert!(
                        brute,
                        "solver found a point but brute force (within box) disagrees: {cons:?}"
                    );
                }
                IlpResult::Unsat => assert!(
                    !brute,
                    "solver said unsat but brute force found a point: {cons:?}"
                ),
                IlpResult::Unknown => panic!("budget should not be hit on tiny systems"),
            }
        }
    }
}
